package store

import (
	"fmt"
	"sync"

	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// Snapshot is a decoded instance snapshot. Its columns alias the backing
// bytes (a mapped file under Open), and the counting substrate —
// relational.Database, the canonical block sequence, eval.Index — is
// assembled on first use by borrowing those arenas: no text is parsed, no
// hash index or posting list is rebuilt eagerly, and the assembly performs
// a constant number of allocations plus one O(symbols + predicates) map
// fill deferred to the first probe that needs it.
//
// The mapped bytes themselves are read-only, but the materialized
// substrate is live: appended delta-journal ops are replayed through it at
// materialization, and further deltas may be applied via Live — mutations
// only append to or tombstone the borrowed structures, never write through
// the mapping. Close unmaps the backing file, after which no structure
// borrowed from the snapshot may be touched.
type Snapshot struct {
	data   []byte
	closer func() error

	// Validated column views from Decode.
	constBytes, predBytes []byte
	constOffs, predOffs   []uint32
	schema                []uint32 // numPreds × {arity, keyWidth+1}
	extraKeys             []extraKey
	fpred                 []uint32
	factOffs              []uint32
	factArgs              []uint32
	domOrder              []uint32
	blockBounds           []uint32
	post                  *eval.PostingSections

	// journal holds the ops of any delta-journal blocks appended after the
	// sealed base; they are replayed through the live substrate when the
	// snapshot materializes.
	journal []JournalOp

	// baseCRC is the sealed base's trailer digest (CRC-32C of every base
	// byte before the trailer, zero-extended to 64 bits). Shard manifests
	// identify shard snapshots by this value.
	baseCRC uint64

	// baseLen is the sealed base's byte length (the header's size field);
	// data beyond it is the journal region.
	baseLen uint64

	matOnce sync.Once
	matErr  error
	in      *relational.Interner
	ks      *relational.KeySet
	facts   []relational.Fact
	db      *relational.Database
	idx     *eval.Index
	blocks  []relational.Block
	live    *eval.LiveInstance
}

// NumFacts returns the number of facts in the snapshot without
// materializing anything.
func (s *Snapshot) NumFacts() int { return len(s.fpred) }

// HasBlocks reports whether the snapshot carries the precomputed block
// partition; Blocks recomputes the boundaries when it does not.
func (s *Snapshot) HasBlocks() bool { return s.blockBounds != nil }

// HasPostings reports whether the snapshot carries prebuilt posting lists.
func (s *Snapshot) HasPostings() bool { return s.post != nil }

// BaseCRC returns the sealed base's trailer digest — the value WriteCRC
// reported when the base was written. Appended journal blocks do not change
// it.
func (s *Snapshot) BaseCRC() uint64 { return s.baseCRC }

// JournalBytes returns the size of the journal region appended after the
// sealed base — the growth a compaction would reclaim.
func (s *Snapshot) JournalBytes() int64 { return int64(uint64(len(s.data)) - s.baseLen) }

// Close releases the backing mapping (a no-op for in-memory snapshots).
// No structure obtained from the snapshot may be used afterwards.
func (s *Snapshot) Close() error {
	c := s.closer
	s.closer = nil
	if c != nil {
		return c()
	}
	return nil
}

// materialize assembles the borrowed substrate once.
func (s *Snapshot) materialize() error {
	s.matOnce.Do(func() { s.matErr = s.build() })
	return s.matErr
}

func (s *Snapshot) build() error {
	nc, np := len(s.constOffs)-1, len(s.predOffs)-1

	// Symbol slices aliasing the byte arenas.
	consts := make([]relational.Const, nc)
	for i := range consts {
		consts[i] = relational.Const(byteString(s.constBytes[s.constOffs[i]:s.constOffs[i+1]]))
	}
	preds := make([]string, np)
	for i := range preds {
		preds[i] = byteString(s.predBytes[s.predOffs[i]:s.predOffs[i+1]])
	}
	s.in = relational.InternerFromSymbols(consts, preds)

	// Key set and schema.
	s.ks = relational.NewKeySet()
	schema := make(relational.Schema, np)
	for p := 0; p < np; p++ {
		schema[preds[p]] = int(s.schema[2*p])
		if enc := s.schema[2*p+1]; enc > 0 {
			if err := s.ks.Add(preds[p], int(enc-1)); err != nil {
				return fmt.Errorf("store: invalid snapshot key set: %w", err)
			}
		}
	}
	for _, k := range s.extraKeys {
		if err := s.ks.Add(k.name, k.width); err != nil {
			return fmt.Errorf("store: invalid snapshot key set: %w", err)
		}
	}

	// Facts: one shared constant arena plus per-fact subslices of the
	// mapped ID arena — a constant number of allocations however many
	// facts the snapshot holds. The three linear fills are independent
	// (the arena fill writes slice contents, the others only slice
	// headers over disjoint arrays), so they run concurrently: cold-start
	// latency is the point of the store.
	n := len(s.fpred)
	argArena := make([]relational.Const, len(s.factArgs))
	s.facts = make([]relational.Fact, n)
	iargs := make([][]uint32, n)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i, cid := range s.factArgs {
			argArena[i] = consts[cid]
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			lo, hi := s.factOffs[i], s.factOffs[i+1]
			iargs[i] = s.factArgs[lo:hi:hi]
		}
	}()
	for i := 0; i < n; i++ {
		lo, hi := s.factOffs[i], s.factOffs[i+1]
		s.facts[i] = relational.Fact{Pred: preds[s.fpred[i]], Args: argArena[lo:hi:hi]}
	}
	wg.Wait()
	s.db = relational.DatabaseFromArenas(s.in, s.facts, s.fpred, iargs, schema)

	// Second phase: the index's predicate-range scan and the block
	// materialization both read only structures completed above, so they
	// overlap too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bounds := s.blockBounds
		if bounds == nil {
			bounds = s.computeBounds()
		}
		nBlocks := len(bounds) - 1
		if nBlocks < 0 {
			nBlocks = 0
		}
		s.blocks = make([]relational.Block, nBlocks)
		for b := 0; b < nBlocks; b++ {
			lo, hi := bounds[b], bounds[b+1]
			kw := s.kwEff(s.fpred[lo])
			s.blocks[b] = relational.Block{
				Key:   relational.KeyValue{Pred: s.facts[lo].Pred, Vals: s.facts[lo].Args[:kw:kw]},
				Facts: s.facts[lo:hi:hi],
			}
		}
	}()
	dom := make([]relational.Const, nc)
	for i, id := range s.domOrder {
		dom[i] = consts[id]
	}
	s.idx = eval.IndexFromSections(eval.IndexSections{
		Interner: s.in,
		Facts:    s.facts,
		Arena:    s.factArgs,
		Offs:     i32View(s.factOffs),
		FPred:    s.fpred,
		Dom:      dom,
		Postings: s.post,
	})
	wg.Wait()

	// Replay any appended delta journal through the live substrate: the
	// maintained structures absorb each op incrementally (appends reallocate
	// past the borrowed mapped arenas; deletes tombstone), so a journaled
	// snapshot materializes to exactly the mutated instance without
	// rewriting or re-decoding the base.
	s.live = eval.NewLiveInstance(s.db, s.ks, relational.NewBlockSeq(s.blocks), s.idx)
	for i, op := range s.journal {
		if _, err := s.live.Apply(op.Del, op.Fact); err != nil {
			return fmt.Errorf("store: journal op %d (%s): %w", i, op.Fact, err)
		}
	}
	return nil
}

// Live returns the snapshot's live mutable substrate (database, maintained
// block sequence, evaluation index) with any journal already replayed.
// Counters sharing it observe each other's deltas.
func (s *Snapshot) Live() (*eval.LiveInstance, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.live, nil
}

// NumJournalOps returns the number of delta-journal ops appended after the
// sealed base (0 for a clean snapshot), without materializing anything.
func (s *Snapshot) NumJournalOps() int { return len(s.journal) }

// kwEff returns the effective key width of a predicate: its declared key
// width when one exists and fits the arity, else the full arity.
func (s *Snapshot) kwEff(pred uint32) uint32 {
	arity := s.schema[2*pred]
	if enc := s.schema[2*pred+1]; enc > 0 && enc-1 <= arity {
		return enc - 1
	}
	return arity
}

// computeBounds recovers the block boundaries of a snapshot written
// without the precomputed section, via the writer's run decomposition
// over the canonical fact order.
func (s *Snapshot) computeBounds() []uint32 {
	return blockBoundaries(s.fpred, s.factOffs, s.factArgs, s.kwEff)
}

// Database returns the snapshot's database, assembled over the mapped
// arenas.
func (s *Snapshot) Database() (*relational.Database, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.db, nil
}

// Keys returns the snapshot's key set Σ.
func (s *Snapshot) Keys() (*relational.KeySet, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.ks, nil
}

// Blocks returns the canonical conflict-block sequence ≺(D,Σ) — identical
// to relational.Blocks over the parsed (and journal-mutated) instance. The
// slice is invalidated by further deltas applied through Live.
func (s *Snapshot) Blocks() ([]relational.Block, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.live.Blocks.Seq(), nil
}

// BlockIndex returns the maintained key-value → block-position index over
// Blocks.
func (s *Snapshot) BlockIndex() (*relational.BlockIndex, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.live.Blocks.Index(), nil
}

// Index returns the evaluation index over the snapshot's facts, sharing
// the mapped arenas and (when present) the prebuilt posting lists.
func (s *Snapshot) Index() (*eval.Index, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.idx, nil
}

package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"
	"os"
	"strings"

	"repaircount/internal/core"
	"repaircount/internal/relational"
)

// This file implements the component-group slicer and the two sharding
// artifacts it exchanges with the counters: the CQSM manifest binding a
// shard set together and the CQSP partial-result files the merge step
// recombines. The slicer itself is query-agnostic — it consumes a
// per-block shard assignment (computed by the counting layer from the
// factorization's component graph) and reuses the snapshot writer, so
// every shard is a self-contained, CRC-valid version-1 snapshot holding
// only the symbols, facts, blocks and postings its block subset needs.

// Shard-assignment sentinels, mirroring the counting layer's convention: a
// block position assigned shardShared is replicated into every shard, one
// assigned shardExcluded appears in none (its size multiplies into the
// manifest's Outer factor).
const (
	shardShared   = -1
	shardExcluded = -2
)

// Manifest describes one sharding of a sealed snapshot: which query the
// partition is valid for, the digests identifying each shard snapshot, and
// the global factor carried by the blocks excluded from every shard. It is
// the unit of stale/mixed-shard detection — counting and merging verify
// digests against it and error instead of miscounting.
type Manifest struct {
	// BaseCRC is the parent snapshot's sealed-base digest (0 when the shard
	// set was cut from a text instance that never had a snapshot form).
	BaseCRC uint64

	// Query is the canonical rendering of the Boolean query the partition
	// was planned for. A partition is query-dependent (components are
	// components of the query-interaction graph), so counting a shard under
	// a different query must be rejected.
	Query string

	// Outer is Π|B_i| over the blocks excluded from every shard:
	// irrelevant blocks and conflicting blocks no homomorphic image
	// touches. The merge multiplies it back in.
	Outer *big.Int

	// Shards describes each shard snapshot, in shard order.
	Shards []ManifestShard
}

// ManifestShard is one shard's manifest entry.
type ManifestShard struct {
	// CRC is the shard snapshot's sealed-base digest; `repairctl count
	// -shard` locates the shard index by this value and refuses snapshots
	// that are not part of the set.
	CRC uint64
	// Cost is the planned engine cost the bin-packing charged the shard.
	Cost int64
	// Blocks counts the conflicting blocks exclusive to the shard.
	Blocks int
	// Components counts the query-graph components assigned to the shard.
	Components int
}

// EncodeManifest serializes the manifest as one CQSM block (see the format
// spec in store.go) and returns the encoded bytes together with the
// manifest digest — the trailer CRC partial files must echo.
func EncodeManifest(m *Manifest) ([]byte, uint64, error) {
	if len(m.Shards) == 0 {
		return nil, 0, fmt.Errorf("store: manifest with no shards")
	}
	if len(m.Shards) > math.MaxUint32 {
		return nil, 0, fmt.Errorf("store: %d shards exceed the manifest count field", len(m.Shards))
	}
	if m.Outer == nil || m.Outer.Sign() < 0 {
		return nil, 0, fmt.Errorf("store: manifest outer factor must be a non-negative integer")
	}
	outer := m.Outer.String()
	if len(m.Query) > math.MaxUint32 || len(outer) > math.MaxUint32 {
		return nil, 0, fmt.Errorf("store: manifest field exceeds its length field")
	}
	buf := make([]byte, 0, 28+len(m.Query)+len(outer)+24*len(m.Shards)+8)
	var u32 [4]byte
	var u64 [8]byte
	buf = append(buf, manifestMagic...)
	le.PutUint32(u32[:], manifestVersion)
	buf = append(buf, u32[:]...)
	le.PutUint32(u32[:], uint32(len(m.Shards)))
	buf = append(buf, u32[:]...)
	le.PutUint32(u32[:], uint32(len(m.Query)))
	buf = append(buf, u32[:]...)
	le.PutUint64(u64[:], m.BaseCRC)
	buf = append(buf, u64[:]...)
	le.PutUint32(u32[:], uint32(len(outer)))
	buf = append(buf, u32[:]...)
	buf = append(buf, m.Query...)
	buf = append(buf, outer...)
	for _, s := range m.Shards {
		if s.Cost < 0 {
			return nil, 0, fmt.Errorf("store: negative shard cost %d", s.Cost)
		}
		le.PutUint64(u64[:], s.CRC)
		buf = append(buf, u64[:]...)
		le.PutUint64(u64[:], uint64(s.Cost))
		buf = append(buf, u64[:]...)
		le.PutUint32(u32[:], uint32(s.Blocks))
		buf = append(buf, u32[:]...)
		le.PutUint32(u32[:], uint32(s.Components))
		buf = append(buf, u32[:]...)
	}
	digest := uint64(crc32.Checksum(buf, crcTable))
	le.PutUint64(u64[:], digest)
	return append(buf, u64[:]...), digest, nil
}

// DecodeManifest parses and verifies a CQSM block, returning the manifest
// and its digest.
func DecodeManifest(data []byte) (*Manifest, uint64, error) {
	if len(data) < manifestHeaderSize+manifestTrailerLen {
		return nil, 0, corrupt("manifest: %d bytes is shorter than header plus trailer", len(data))
	}
	if string(data[:4]) != manifestMagic {
		return nil, 0, corrupt("manifest: bad magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != manifestVersion {
		return nil, 0, corrupt("manifest: unsupported version %d (want %d)", v, manifestVersion)
	}
	body := data[:len(data)-manifestTrailerLen]
	digest := le.Uint64(data[len(data)-manifestTrailerLen:])
	if got := uint64(crc32.Checksum(body, crcTable)); got != digest {
		return nil, 0, corrupt("manifest: checksum mismatch: file says %#x, content hashes to %#x", digest, got)
	}
	k := le.Uint32(data[8:])
	qlen := uint64(le.Uint32(data[12:]))
	baseCRC := le.Uint64(data[16:])
	olen := uint64(le.Uint32(data[24:]))
	if k == 0 {
		return nil, 0, corrupt("manifest: zero shards")
	}
	want := uint64(manifestHeaderSize) + qlen + olen + 24*uint64(k)
	if uint64(len(body)) != want {
		return nil, 0, corrupt("manifest: body of %d bytes, header describes %d", len(body), want)
	}
	p := body[manifestHeaderSize:]
	query := string(p[:qlen])
	outerStr := string(p[qlen : qlen+olen])
	outer, ok := new(big.Int).SetString(outerStr, 10)
	if !ok || outer.Sign() < 0 {
		return nil, 0, corrupt("manifest: bad outer factor %q", outerStr)
	}
	p = p[qlen+olen:]
	m := &Manifest{BaseCRC: baseCRC, Query: query, Outer: outer, Shards: make([]ManifestShard, k)}
	for i := range m.Shards {
		cost := le.Uint64(p[8:])
		if cost > math.MaxInt64 {
			return nil, 0, corrupt("manifest: shard %d cost overflows", i)
		}
		m.Shards[i] = ManifestShard{
			CRC:        le.Uint64(p),
			Cost:       int64(cost),
			Blocks:     int(le.Uint32(p[16:])),
			Components: int(le.Uint32(p[20:])),
		}
		p = p[24:]
	}
	return m, digest, nil
}

// WriteManifestFile writes the manifest to path and returns its digest.
func WriteManifestFile(path string, m *Manifest) (uint64, error) {
	buf, digest, err := EncodeManifest(m)
	if err != nil {
		return 0, err
	}
	return digest, os.WriteFile(path, buf, 0o644)
}

// ReadManifestFile loads and verifies the manifest at path.
func ReadManifestFile(path string) (*Manifest, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return DecodeManifest(data)
}

// SniffManifest reports whether prefix starts like a CQSM manifest.
func SniffManifest(prefix []byte) bool {
	return len(prefix) >= 8 && string(prefix[:4]) == manifestMagic && le.Uint32(prefix[4:]) == manifestVersion
}

// WriteShardFiles slices an instance into one self-contained snapshot per
// shard: shardOf assigns each position of the canonical block sequence to a
// shard index (0..len(paths)−1), shardShared (−1, replicated everywhere) or
// shardExcluded (−2, written nowhere). Each shard re-interns its fact
// subset canonically and carries all precomputed sections, so it loads like
// any sealed snapshot. Every shard keeps the full key set — keys of
// predicates the shard has no facts for ride along in the extra-keys
// section. Returns the per-shard sealed-base digests, in shard order.
func WriteShardFiles(ks *relational.KeySet, blocks []relational.Block, shardOf []int32, paths []string) ([]uint64, error) {
	if len(shardOf) != len(blocks) {
		return nil, fmt.Errorf("store: shard assignment covers %d blocks, instance has %d", len(shardOf), len(blocks))
	}
	facts := make([][]relational.Fact, len(paths))
	for pos, b := range blocks {
		switch s := shardOf[pos]; {
		case s >= 0 && int(s) < len(paths):
			facts[s] = append(facts[s], b.Facts...)
		case s == shardShared:
			for i := range facts {
				facts[i] = append(facts[i], b.Facts...)
			}
		case s == shardExcluded:
		default:
			return nil, fmt.Errorf("store: block %d assigned to shard %d of %d", pos, s, len(paths))
		}
	}
	digests := make([]uint64, len(paths))
	for s, path := range paths {
		db, err := relational.NewDatabase(facts[s]...)
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", s, err)
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		digest, err := WriteCRC(bw, db, ks, DefaultOptions)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: shard %d: %w", s, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		digests[s] = digest
	}
	return digests, nil
}

// PartialFile is one shard's serialized counting result (a CQSP file): the
// identity of the manifest and shard it belongs to, and the shard's Inner
// (Π|B_i| choice space) and NonEnt (repairs not entailing the query)
// totals. Inner − NonEnt is the shard's own #Q; the merge multiplies each
// side across the set.
type PartialFile struct {
	ManifestCRC uint64
	Shard, K    int
	SnapshotCRC uint64
	Inner       *big.Int
	NonEnt      *big.Int

	// Epoch and Applied stamp the distributed-serving provenance of the
	// partial: the coordinator epoch the worker believed it was serving
	// and the number of delta ops the worker had applied to its shard
	// when it counted. Both zero for offline (repairctl count -shard)
	// partials, which encode as version 1; a nonzero value upgrades the
	// encoding to CQSP 2 with two extra lines.
	Epoch   uint64
	Applied uint64
}

// EncodePartial renders the partial in the CQSP text form (see store.go).
func EncodePartial(p *PartialFile) ([]byte, error) {
	if p.K <= 0 || p.Shard < 0 || p.Shard >= p.K {
		return nil, fmt.Errorf("store: partial names shard %d of %d", p.Shard, p.K)
	}
	var inner, nonent core.Accum
	if err := inner.SetBig(p.Inner); err != nil {
		return nil, fmt.Errorf("store: partial inner: %w", err)
	}
	if err := nonent.SetBig(p.NonEnt); err != nil {
		return nil, fmt.Errorf("store: partial nonent: %w", err)
	}
	it, _ := inner.MarshalText()
	nt, _ := nonent.MarshalText()
	ver := partialVersion
	if p.Epoch != 0 || p.Applied != 0 {
		ver = partialVersion2
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "CQSP %d\n", ver)
	fmt.Fprintf(&sb, "manifest %016x\n", p.ManifestCRC)
	fmt.Fprintf(&sb, "shard %d of %d\n", p.Shard, p.K)
	fmt.Fprintf(&sb, "snapshot %016x\n", p.SnapshotCRC)
	fmt.Fprintf(&sb, "inner %s\n", it)
	fmt.Fprintf(&sb, "nonent %s\n", nt)
	if ver == partialVersion2 {
		fmt.Fprintf(&sb, "epoch %d\n", p.Epoch)
		fmt.Fprintf(&sb, "applied %d\n", p.Applied)
	}
	return []byte(sb.String()), nil
}

// DecodePartial parses a CQSP file, rejecting any structural deviation.
func DecodePartial(data []byte) (*PartialFile, error) {
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	var ver int
	if len(lines) < 1 {
		return nil, corrupt("partial: empty file")
	}
	if _, err := fmt.Sscanf(lines[0], "CQSP %d", &ver); err != nil ||
		(ver != partialVersion && ver != partialVersion2) {
		return nil, corrupt("partial: bad header %q", lines[0])
	}
	wantLines := 6
	if ver == partialVersion2 {
		wantLines = 8
	}
	if len(lines) != wantLines {
		return nil, corrupt("partial: %d lines (want %d for version %d)", len(lines), wantLines, ver)
	}
	p := &PartialFile{}
	if _, err := fmt.Sscanf(lines[1], "manifest %x", &p.ManifestCRC); err != nil {
		return nil, corrupt("partial: bad manifest line %q", lines[1])
	}
	if _, err := fmt.Sscanf(lines[2], "shard %d of %d", &p.Shard, &p.K); err != nil {
		return nil, corrupt("partial: bad shard line %q", lines[2])
	}
	if p.K <= 0 || p.Shard < 0 || p.Shard >= p.K {
		return nil, corrupt("partial: shard %d of %d out of range", p.Shard, p.K)
	}
	if _, err := fmt.Sscanf(lines[3], "snapshot %x", &p.SnapshotCRC); err != nil {
		return nil, corrupt("partial: bad snapshot line %q", lines[3])
	}
	var inner, nonent core.Accum
	if !strings.HasPrefix(lines[4], "inner ") {
		return nil, corrupt("partial: bad inner line %q", lines[4])
	}
	if err := inner.UnmarshalText([]byte(strings.TrimPrefix(lines[4], "inner "))); err != nil {
		return nil, corrupt("partial: %v", err)
	}
	if !strings.HasPrefix(lines[5], "nonent ") {
		return nil, corrupt("partial: bad nonent line %q", lines[5])
	}
	if err := nonent.UnmarshalText([]byte(strings.TrimPrefix(lines[5], "nonent "))); err != nil {
		return nil, corrupt("partial: %v", err)
	}
	p.Inner = inner.Big()
	p.NonEnt = nonent.Big()
	if ver == partialVersion2 {
		if _, err := fmt.Sscanf(lines[6], "epoch %d", &p.Epoch); err != nil {
			return nil, corrupt("partial: bad epoch line %q", lines[6])
		}
		if _, err := fmt.Sscanf(lines[7], "applied %d", &p.Applied); err != nil {
			return nil, corrupt("partial: bad applied line %q", lines[7])
		}
	}
	return p, nil
}

// WritePartialFile writes the partial to path.
func WritePartialFile(path string, p *PartialFile) error {
	buf, err := EncodePartial(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadPartialFile loads and verifies the partial at path.
func ReadPartialFile(path string) (*PartialFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodePartial(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// CheckPartial verifies one partial's identity against the manifest it is
// about to be merged under: the manifest digest it echoes, the shard count,
// the shard index range and the shard snapshot digest the manifest records.
// It is the single gate both the offline merge and the cluster coordinator
// pass every partial through before trusting its totals.
func CheckPartial(m *Manifest, manifestCRC uint64, p *PartialFile) error {
	k := len(m.Shards)
	if p.ManifestCRC != manifestCRC {
		return fmt.Errorf("store: partial for shard %d was produced under manifest %016x, merging under %016x", p.Shard, p.ManifestCRC, manifestCRC)
	}
	if p.K != k {
		return fmt.Errorf("store: partial says %d shards, manifest has %d", p.K, k)
	}
	if p.Shard < 0 || p.Shard >= k {
		return fmt.Errorf("store: partial names shard %d of %d", p.Shard, k)
	}
	if want := m.Shards[p.Shard].CRC; p.SnapshotCRC != want {
		return fmt.Errorf("store: partial for shard %d counted snapshot %016x, manifest records %016x", p.Shard, p.SnapshotCRC, want)
	}
	return nil
}

// MergePartials recombines a complete shard set's partials under the
// manifest:
//
//	#Q = (Π_s Inner_s − Π_s NonEnt_s) × Outer
//
// Every partial must carry the manifest's digest and its shard's snapshot
// digest, every shard must contribute exactly once, and the shard count
// must match — a stale, duplicated, missing or foreign partial is an
// error, never a miscount.
func MergePartials(m *Manifest, manifestCRC uint64, parts []*PartialFile) (*big.Int, error) {
	k := len(m.Shards)
	if len(parts) != k {
		return nil, fmt.Errorf("store: merge needs %d partials, got %d", k, len(parts))
	}
	seen := make([]bool, k)
	inner := big.NewInt(1)
	nonent := big.NewInt(1)
	for _, p := range parts {
		if err := CheckPartial(m, manifestCRC, p); err != nil {
			return nil, err
		}
		if seen[p.Shard] {
			return nil, fmt.Errorf("store: two partials for shard %d", p.Shard)
		}
		seen[p.Shard] = true
		inner.Mul(inner, p.Inner)
		nonent.Mul(nonent, p.NonEnt)
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("store: no partial for shard %d", s)
		}
	}
	count := inner.Sub(inner, nonent)
	return count.Mul(count, m.Outer), nil
}

package store_test

import (
	"bytes"
	"math/big"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// countsOf computes the reference triple (total, factorized, decision)
// over an instance.
func countsOf(t *testing.T, db *relational.Database, ks *relational.KeySet, q query.Formula) (*big.Int, *big.Int, bool) {
	t.Helper()
	in, err := repairs.NewInstance(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	return in.TotalRepairs(), n, in.HasRepairEntailing()
}

// snapshotCounts loads a snapshot file and computes the same triple over
// its materialized substrate.
func snapshotCounts(t *testing.T, path string, q query.Formula) (*big.Int, *big.Int, bool) {
	t.Helper()
	snap, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	live, err := snap.Live()
	if err != nil {
		t.Fatal(err)
	}
	in, err := repairs.NewLiveInstance(live, q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	return in.TotalRepairs(), n, in.HasRepairEntailing()
}

// TestJournalRoundTrip builds a snapshot, appends two journal blocks of
// randomized updates, and asserts the journaled load, the text-path
// rebuild of the mutated instance, and the compacted reseal all agree on
// counts bit-identically.
func TestJournalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 21))
	db, ks := workload.Employee(rng, 14, 3, 0.6)
	q := workload.SameDeptQuery(1, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "base.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}

	stream := workload.UpdateStream(rng, db, ks, 30, 0.5)
	toOps := func(us []workload.Update) []store.JournalOp {
		ops := make([]store.JournalOp, len(us))
		for i, u := range us {
			ops[i] = store.JournalOp{Del: u.Del, Fact: u.Fact}
		}
		return ops
	}
	if err := store.AppendJournal(path, toOps(stream[:12])); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(path, toOps(stream[12:])); err != nil {
		t.Fatal(err)
	}

	// Text-path ground truth: apply the stream to the parsed database.
	for _, u := range stream {
		if u.Del {
			if !db.Delete(u.Fact) {
				t.Fatalf("stream delete of absent fact %v", u.Fact)
			}
		} else if added, err := db.Insert(u.Fact); err != nil || !added {
			t.Fatalf("stream insert of %v: added=%v err=%v", u.Fact, added, err)
		}
	}
	wantTotal, wantCount, wantDec := countsOf(t, db, ks, q)

	gotTotal, gotCount, gotDec := snapshotCounts(t, path, q)
	if gotTotal.Cmp(wantTotal) != 0 || gotCount.Cmp(wantCount) != 0 || gotDec != wantDec {
		t.Fatalf("journaled load: (%s, %s, %v), text path: (%s, %s, %v)",
			gotTotal, gotCount, gotDec, wantTotal, wantCount, wantDec)
	}

	compacted := filepath.Join(dir, "compact.cqs")
	if err := store.CompactFile(path, compacted); err != nil {
		t.Fatal(err)
	}
	cTotal, cCount, cDec := snapshotCounts(t, compacted, q)
	if cTotal.Cmp(wantTotal) != 0 || cCount.Cmp(wantCount) != 0 || cDec != wantDec {
		t.Fatalf("compacted load: (%s, %s, %v), text path: (%s, %s, %v)",
			cTotal, cCount, cDec, wantTotal, wantCount, wantDec)
	}
	// The compacted file must be a clean sealed snapshot: no journal, and
	// decodable with full verification.
	data, err := os.ReadFile(compacted)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumJournalOps() != 0 {
		t.Fatalf("compacted snapshot carries %d journal ops", snap.NumJournalOps())
	}
}

// TestJournalValidation pins the failure modes: corrupted, truncated or
// misframed journal regions must fail the whole load with an error.
func TestJournalValidation(t *testing.T) {
	db, ks := workload.PairsDatabase(3)
	var base bytes.Buffer
	if err := store.Write(&base, db, ks, store.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	ops := []store.JournalOp{
		{Fact: relational.NewFact("R", "k9", "a")},
		{Del: true, Fact: relational.NewFact("R", "k0", "a")},
	}
	block, err := store.EncodeJournal(ops)
	if err != nil {
		t.Fatal(err)
	}
	good := append(append([]byte(nil), base.Bytes()...), block...)
	if _, err := store.Decode(good); err != nil {
		t.Fatalf("valid journaled snapshot rejected: %v", err)
	}

	mutate := func(name string, f func([]byte) []byte) {
		data := f(append([]byte(nil), good...))
		if _, err := store.Decode(data); err == nil {
			t.Errorf("%s: corrupted journal accepted", name)
		}
		if _, err := store.DecodeUnverified(data); err == nil {
			t.Errorf("%s: corrupted journal accepted unverified", name)
		}
	}
	baseLen := base.Len()
	mutate("truncated block", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("bad magic", func(b []byte) []byte { b[baseLen] ^= 0xff; return b })
	mutate("payload bit flip", func(b []byte) []byte { b[baseLen+20] ^= 1; return b })
	mutate("crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	mutate("zero ops", func(b []byte) []byte {
		for i := 4; i < 8; i++ {
			b[baseLen+i] = 0
		}
		return b
	})
	mutate("frame shorter than header", func(b []byte) []byte { return append(b, 'C', 'Q', 'S', 'J') })

	// A journal op deleting an absent fact is a no-op, not an error.
	noop, err := store.EncodeJournal([]store.JournalOp{{Del: true, Fact: relational.NewFact("R", "zz", "zz")}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode(append(append([]byte(nil), base.Bytes()...), noop...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Database(); err != nil {
		t.Fatalf("no-op journal failed to materialize: %v", err)
	}
	// An op with an arity clash must fail materialization, not panic.
	clash, err := store.EncodeJournal([]store.JournalOp{{Fact: relational.NewFact("R", "only-one-arg")}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err = store.Decode(append(append([]byte(nil), base.Bytes()...), clash...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Database(); err == nil {
		t.Fatal("arity-clashing journal op materialized without error")
	}
}

// TestAppendJournalGuards pins AppendJournal's file checks.
func TestAppendJournalGuards(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-snapshot")
	if err := os.WriteFile(bad, []byte("key R 1\nR(a, b)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ops := []store.JournalOp{{Fact: relational.NewFact("R", "x", "y")}}
	if err := store.AppendJournal(bad, ops); err == nil {
		t.Fatal("append to a text file succeeded")
	}
	if err := store.AppendJournal(filepath.Join(dir, "missing.cqs"), ops); err == nil {
		t.Fatal("append to a missing file succeeded")
	}
	if _, err := store.EncodeJournal(nil); err == nil {
		t.Fatal("empty journal block encoded")
	}

	// An op the snapshot cannot absorb is rejected by the dry-run and the
	// file stays loadable — a bad append must never brick the snapshot.
	db, ks := workload.PairsDatabase(2)
	path := filepath.Join(dir, "good.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	clash := []store.JournalOp{{Fact: relational.NewFact("R", "only-one-arg")}}
	if err := store.AppendJournal(path, clash); err == nil {
		t.Fatal("arity-clashing op appended")
	}
	snap, err := store.Open(path)
	if err != nil {
		t.Fatalf("snapshot unreadable after rejected append: %v", err)
	}
	if _, err := snap.Database(); err != nil {
		t.Fatalf("snapshot unusable after rejected append: %v", err)
	}
	snap.Close()
}

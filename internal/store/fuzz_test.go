package store_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// fuzzSeeds returns valid snapshots of small fixtures — the corpus the
// fuzzer mutates.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	add := func(db *relational.Database, ks *relational.KeySet, opts store.Options) {
		var buf bytes.Buffer
		if err := store.Write(&buf, db, ks, opts); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	db, ks := workload.PairsDatabase(3)
	add(db, ks, store.DefaultOptions)
	add(db, ks, store.Options{})
	rng := rand.New(rand.NewPCG(3, 3))
	db, ks = workload.Employee(rng, 12, 3, 0.5)
	add(db, ks, store.DefaultOptions)
	db, ks, _ = workload.MultiComponent(2, 2, 2)
	add(db, ks, store.DefaultOptions)
	add(relational.MustDatabase(), relational.Keys(map[string]int{"R": 2}), store.DefaultOptions)

	// Journal-bearing snapshots: sealed bases with appended delta blocks,
	// so mutations reach the journal parser and the replay path.
	withJournal := func(seed []byte, ops []store.JournalOp) {
		block, err := store.EncodeJournal(ops)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, append(append([]byte(nil), seed...), block...))
	}
	withJournal(seeds[0], []store.JournalOp{
		{Fact: relational.NewFact("R", "k0", "c")},
		{Del: true, Fact: relational.NewFact("R", "k1", "a")},
	})
	withJournal(seeds[0], []store.JournalOp{
		{Del: true, Fact: relational.NewFact("R", "k2", "a")},
		{Del: true, Fact: relational.NewFact("R", "k2", "b")},
		{Fact: relational.NewFact("Snew", "s1")},
	})
	return seeds
}

// FuzzSnapshotDecode feeds mutated and truncated snapshot bytes to the
// loader. The decoder must reject malformed input with an error — never
// panic, never index out of range in the structures it hands out. When a
// mutant decodes successfully, the whole substrate is exercised
// (membership probes, blocks, index, a small count) to prove the
// validated columns are safe to walk.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		for _, cut := range []int{1, 7, 8, 31, 32, 40, len(seed) / 2} {
			if cut < len(seed) {
				f.Add(seed[:len(seed)-cut])
			}
		}
	}
	q := query.MustParse("exists x . R(x, 'a')")
	f.Fuzz(func(t *testing.T, data []byte) {
		// The checksum pass is deliberately skipped so mutations reach the
		// structural validation; Decode proper is covered at the end.
		snap, err := store.DecodeUnverified(data)
		if err != nil {
			return
		}
		db, err := snap.Database()
		if err != nil {
			return
		}
		ks, _ := snap.Keys()
		blocks, _ := snap.Blocks()
		for _, b := range blocks {
			_ = b.Key.Canonical()
			_ = b.Size()
		}
		_ = relational.NumRepairsOfBlocks(blocks)
		idx, _ := snap.Index()
		for i := 0; i < idx.NumFacts() && i < 8; i++ {
			if !idx.Alive(int32(i)) {
				continue // journal-tombstoned ordinal
			}
			fact := idx.FactAt(i)
			if !db.Contains(fact) {
				// A fuzzed snapshot may carry duplicate facts, which the
				// hash probe resolves to some ordinal; presence itself
				// must still hold.
				t.Fatalf("loaded database misses its own fact %v", fact)
			}
			if _, ok := idx.OrdinalOf(fact); !ok {
				t.Fatalf("index misses its own fact %v", fact)
			}
		}
		db.Contains(relational.NewFact("R", "a"))
		_ = db.Satisfies(ks)
		// A tiny end-to-end count drives the matchers over the (possibly
		// hostile) posting lists and block partition.
		if inst, err := repairs.NewPreparedInstance(db, ks, q, blocks, idx); err == nil {
			if db.Len() <= 16 {
				inst.CountExact()
			} else {
				inst.HasRepairEntailing()
			}
		}
		// The verified decoder accepts a strict subset of what the
		// unverified one accepts (same structure plus the checksum), so
		// it too must never panic on this input.
		store.Decode(data)
	})
}

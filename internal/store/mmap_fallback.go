//go:build !(linux || darwin)

package store

import (
	"io"
	"os"
	"unsafe"
)

// mapFile is the portable fallback: it reads the file into a 64-bit
// aligned buffer (so uint32 columns can still be aliased without copies)
// and releases nothing on close.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

package store_test

import (
	"math/big"
	"path/filepath"
	"testing"

	"repaircount/internal/repairs"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// sampleManifest builds a plausible three-shard manifest.
func sampleManifest() *store.Manifest {
	return &store.Manifest{
		BaseCRC: 0xdeadbeefcafe,
		Query:   "(exists x . R(x,'a')) | (exists y . S(y,'b'))",
		Outer:   new(big.Int).Lsh(big.NewInt(1), 100),
		Shards: []store.ManifestShard{
			{CRC: 0x1111, Cost: 64, Blocks: 5, Components: 2},
			{CRC: 0x2222, Cost: 32, Blocks: 3, Components: 1},
			{CRC: 0x3333, Cost: 0, Blocks: 0, Components: 0},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	buf, digest, err := store.EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, gotDigest, err := store.DecodeManifest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest {
		t.Fatalf("digest %#x on decode, %#x on encode", gotDigest, digest)
	}
	if got.BaseCRC != m.BaseCRC || got.Query != m.Query || got.Outer.Cmp(m.Outer) != 0 {
		t.Fatalf("round trip mangled the header: %+v", got)
	}
	if len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip: %d shards, want %d", len(got.Shards), len(m.Shards))
	}
	for i, s := range got.Shards {
		if s != m.Shards[i] {
			t.Fatalf("shard %d round-tripped to %+v, want %+v", i, s, m.Shards[i])
		}
	}
	if !store.SniffManifest(buf) {
		t.Fatal("SniffManifest rejects a valid manifest")
	}

	// Every single-byte corruption and every truncation must be caught.
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, _, err := store.DecodeManifest(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	for n := 0; n < len(buf); n += 7 {
		if _, _, err := store.DecodeManifest(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}

	path := filepath.Join(t.TempDir(), "m.cqsm")
	fileDigest, err := store.WriteManifestFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	_, readDigest, err := store.ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fileDigest != digest || readDigest != digest {
		t.Fatalf("file digests %#x/%#x, want %#x", fileDigest, readDigest, digest)
	}
}

func TestManifestEncodeRejects(t *testing.T) {
	if _, _, err := store.EncodeManifest(&store.Manifest{Outer: big.NewInt(1)}); err == nil {
		t.Fatal("zero-shard manifest accepted")
	}
	m := sampleManifest()
	m.Outer = nil
	if _, _, err := store.EncodeManifest(m); err == nil {
		t.Fatal("nil outer accepted")
	}
	m = sampleManifest()
	m.Outer = big.NewInt(-3)
	if _, _, err := store.EncodeManifest(m); err == nil {
		t.Fatal("negative outer accepted")
	}
	m = sampleManifest()
	m.Shards[1].Cost = -1
	if _, _, err := store.EncodeManifest(m); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestPartialRoundTrip(t *testing.T) {
	big200 := new(big.Int).Lsh(big.NewInt(3), 200) // exercises the hi word
	for _, p := range []*store.PartialFile{
		{ManifestCRC: 0xabc, Shard: 0, K: 1, SnapshotCRC: 0x1, Inner: big.NewInt(12), NonEnt: big.NewInt(5)},
		{ManifestCRC: ^uint64(0), Shard: 2, K: 3, SnapshotCRC: 0xffeeddcc, Inner: big200, NonEnt: new(big.Int).Sub(big200, big.NewInt(7))},
		{ManifestCRC: 0, Shard: 0, K: 8, SnapshotCRC: 0, Inner: big.NewInt(1), NonEnt: big.NewInt(0)},
	} {
		buf, err := store.EncodePartial(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := store.DecodePartial(buf)
		if err != nil {
			t.Fatalf("%s: %v", buf, err)
		}
		if got.ManifestCRC != p.ManifestCRC || got.Shard != p.Shard || got.K != p.K ||
			got.SnapshotCRC != p.SnapshotCRC || got.Inner.Cmp(p.Inner) != 0 || got.NonEnt.Cmp(p.NonEnt) != 0 {
			t.Fatalf("round trip mangled %+v into %+v", p, got)
		}
	}
}

func TestPartialDecodeRejects(t *testing.T) {
	good, err := store.EncodePartial(&store.PartialFile{
		ManifestCRC: 0xabc, Shard: 1, K: 2, SnapshotCRC: 0x9, Inner: big.NewInt(8), NonEnt: big.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string]string{
		"empty":         "",
		"missing line":  "CQSP 1\nmanifest 0abc\nshard 1 of 2\nsnapshot 09\ninner 8\n",
		"extra line":    string(good) + "trailer\n",
		"bad version":   "CQSP 9" + string(good[6:]),
		"bad decimal":   "CQSP 1\nmanifest 0abc\nshard 1 of 2\nsnapshot 09\ninner 8x\nnonent 3\n",
		"neg shard":     "CQSP 1\nmanifest 0abc\nshard -1 of 2\nsnapshot 09\ninner 8\nnonent 3\n",
		"shard beyond":  "CQSP 1\nmanifest 0abc\nshard 2 of 2\nsnapshot 09\ninner 8\nnonent 3\n",
		"wrong label":   "CQSP 1\nmanifest 0abc\nshard 1 of 2\nsnapshot 09\ntotal 8\nnonent 3\n",
		"empty decimal": "CQSP 1\nmanifest 0abc\nshard 1 of 2\nsnapshot 09\ninner \nnonent 3\n",
	} {
		if _, err := store.DecodePartial([]byte(data)); err == nil {
			t.Fatalf("%s: accepted %q", name, data)
		}
	}
	if _, err := store.EncodePartial(&store.PartialFile{Shard: 3, K: 2, Inner: big.NewInt(1), NonEnt: big.NewInt(1)}); err == nil {
		t.Fatal("out-of-range shard encoded")
	}
	if _, err := store.EncodePartial(&store.PartialFile{Shard: 0, K: 1, Inner: big.NewInt(-1), NonEnt: big.NewInt(1)}); err == nil {
		t.Fatal("negative inner encoded")
	}
}

// WriteShardFiles must emit self-contained snapshots whose sealed digests
// match what it reports, partitioning the conflicting blocks and
// replicating the shared ones.
func TestWriteShardFiles(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 3, 2)
	in := repairs.MustInstance(db, ks, q)
	plan, err := in.PlanShards(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "s0.cqs"), filepath.Join(dir, "s1.cqs")}
	digests, err := store.WriteShardFiles(ks, in.Blocks, plan.ShardOf, paths)
	if err != nil {
		t.Fatal(err)
	}
	sumFacts := 0
	shared := 0
	for pos, b := range in.Blocks {
		if plan.ShardOf[pos] == repairs.ShardShared {
			shared += b.Size()
		}
	}
	for s, path := range paths {
		snap, err := store.Open(path)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if snap.BaseCRC() != digests[s] {
			t.Fatalf("shard %d: sealed digest %#x, writer reported %#x", s, snap.BaseCRC(), digests[s])
		}
		db2, err := snap.Database()
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		sumFacts += db2.Len()
		snap.Close()
	}
	wantTotal := 0
	for pos, b := range in.Blocks {
		if plan.ShardOf[pos] != repairs.ShardExcluded {
			wantTotal += b.Size()
		}
	}
	// Shared facts are replicated into both shards; exclusive ones appear
	// exactly once.
	if sumFacts != wantTotal+shared {
		t.Fatalf("shards hold %d facts, want %d exclusive+shared plus %d replicas", sumFacts, wantTotal, shared)
	}

	if _, err := store.WriteShardFiles(ks, in.Blocks, plan.ShardOf[:1], paths); err == nil {
		t.Fatal("short shard assignment accepted")
	}
	badOf := append([]int32(nil), plan.ShardOf...)
	badOf[0] = 7
	if _, err := store.WriteShardFiles(ks, in.Blocks, badOf, paths); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

func TestMergePartialsVerification(t *testing.T) {
	m := &store.Manifest{
		Query: "q",
		Outer: big.NewInt(3),
		Shards: []store.ManifestShard{
			{CRC: 0xa}, {CRC: 0xb},
		},
	}
	_, digest, err := store.EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	part := func(shard int, snap uint64, inner, nonent int64) *store.PartialFile {
		return &store.PartialFile{
			ManifestCRC: digest, Shard: shard, K: 2, SnapshotCRC: snap,
			Inner: big.NewInt(inner), NonEnt: big.NewInt(nonent),
		}
	}
	good := []*store.PartialFile{part(0, 0xa, 4, 1), part(1, 0xb, 8, 3)}
	got, err := store.MergePartials(m, digest, good)
	if err != nil {
		t.Fatal(err)
	}
	// (4·8 − 1·3) × 3 = 87.
	if got.Cmp(big.NewInt(87)) != 0 {
		t.Fatalf("merge = %s, want 87", got)
	}

	cases := map[string][]*store.PartialFile{
		"missing shard":     {part(0, 0xa, 4, 1)},
		"duplicate shard":   {part(0, 0xa, 4, 1), part(0, 0xa, 4, 1)},
		"foreign manifest":  {part(0, 0xa, 4, 1), {ManifestCRC: digest + 1, Shard: 1, K: 2, SnapshotCRC: 0xb, Inner: big.NewInt(8), NonEnt: big.NewInt(3)}},
		"wrong shard count": {part(0, 0xa, 4, 1), {ManifestCRC: digest, Shard: 1, K: 3, SnapshotCRC: 0xb, Inner: big.NewInt(8), NonEnt: big.NewInt(3)}},
		"stale snapshot":    {part(0, 0xa, 4, 1), part(1, 0xbad, 8, 3)},
		"surplus partial":   {part(0, 0xa, 4, 1), part(1, 0xb, 8, 3), part(1, 0xb, 8, 3)},
	}
	for name, parts := range cases {
		if _, err := store.MergePartials(m, digest, parts); err == nil {
			t.Fatalf("%s: merge succeeded", name)
		}
	}
}

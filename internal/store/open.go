package store

import (
	"fmt"
	"os"
)

// Open maps the snapshot file at path and decodes it. On platforms with
// mmap support the file bytes are demand-paged and the returned Snapshot's
// columns alias the mapping (call Close when done); elsewhere the file is
// read into an aligned buffer once. Either way no text is parsed and the
// decoded columns are shared, not copied.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, release, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: map %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		release()
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	s.closer = release
	return s, nil
}

// Sniff reports whether the byte prefix looks like a snapshot file: the
// magic followed by the version-1 word. Checking both keeps a text
// instance whose first predicate happens to be named "CQS1" from being
// misrouted — "CQS1(…" never matches the binary version field. Eight
// bytes suffice.
func Sniff(prefix []byte) bool {
	return len(prefix) >= 8 && string(prefix[:len(magic)]) == magic && le.Uint32(prefix[4:]) == version
}

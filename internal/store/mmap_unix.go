//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release function
// unmaps; the data must not be touched afterwards.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

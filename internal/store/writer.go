package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repaircount/internal/faultfs"
	"repaircount/internal/relational"
)

// Options selects the optional precomputed sections of a snapshot. The
// zero value writes the minimal snapshot (symbols, facts, keys); counting
// workloads want both extras so a load is instance-ready without any
// O(n log n) recomputation.
type Options struct {
	// Blocks includes the canonical conflict-block partition.
	Blocks bool
	// Postings includes the eval.Index argument-position posting lists.
	Postings bool
}

// DefaultOptions enables every precomputed section.
var DefaultOptions = Options{Blocks: true, Postings: true}

// Write serializes the instance (D, Σ) as a version-1 snapshot. Facts are
// re-interned in canonical order — symbol IDs in the file are
// first-appearance ordinals over the canonical fact sequence — so the
// output is deterministic for a given instance regardless of insertion
// order. The stream is written section by section; w needs no seeking.
func Write(w io.Writer, db *relational.Database, ks *relational.KeySet, opts Options) error {
	_, err := WriteCRC(w, db, ks, opts)
	return err
}

// WriteCRC is Write, additionally returning the snapshot's base digest —
// the CRC-32C of every byte before the trailer, zero-extended to 64 bits,
// exactly the value the trailer records and Snapshot.BaseCRC reports after
// a load. Shard manifests store this digest per shard.
func WriteCRC(w io.Writer, db *relational.Database, ks *relational.KeySet, opts Options) (uint64, error) {
	img, err := buildImage(db, ks, opts)
	if err != nil {
		return 0, err
	}
	return img.stream(w)
}

// WriteFile writes the instance to path with DefaultOptions (all
// precomputed sections). The write is atomic and durable: the snapshot is
// streamed to a temporary file in the destination directory, fsynced,
// renamed over path and the directory fsynced — a crash at any point
// leaves either the old file intact or the new one complete, never a
// half-written snapshot under the final name.
func WriteFile(path string, db *relational.Database, ks *relational.KeySet) error {
	dir := filepath.Dir(path)
	f, err := faultfs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := Write(bw, db, ks, DefaultOptions); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faultfs.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return faultfs.SyncDir(dir)
}

// image is the fully-columnar in-memory form of a snapshot, ready to
// stream. Building it is the offline (write-side) cost; loads never
// construct one.
type image struct {
	flags      uint32
	constBytes []byte
	constOffs  []uint32
	predBytes  []byte
	predOffs   []uint32
	schema     []uint32 // numPreds × {arity, keyWidth+1}
	extraKeys  []byte
	fpred      []uint32
	factOffs   []uint32
	factArgs   []uint32
	domOrder   []uint32
	blockBnds  []uint32
	postKeys   []uint32
	postOffs   []uint32
	postOrds   []uint32
}

// buildImage lays the instance out as the format's columns.
func buildImage(db *relational.Database, ks *relational.KeySet, opts Options) (*image, error) {
	facts := db.Facts() // canonical order
	if len(facts) >= math.MaxInt32 {
		return nil, fmt.Errorf("store: %d facts exceed the int32 ordinal space", len(facts))
	}
	img := &image{}
	in := relational.NewInterner()
	img.fpred = make([]uint32, len(facts))
	img.factOffs = make([]uint32, len(facts)+1)
	for i, f := range facts {
		pid, args := in.InternFact(f, img.factArgs)
		img.factArgs = args
		img.fpred[i] = pid
		img.factOffs[i+1] = uint32(len(args))
	}
	if len(img.factArgs) >= math.MaxInt32 {
		return nil, fmt.Errorf("store: argument arena of %d words exceeds the int32 offset space", len(img.factArgs))
	}

	// Symbol tables, in ID order.
	img.constOffs = make([]uint32, 1, in.NumConsts()+1)
	for id := 0; id < in.NumConsts(); id++ {
		img.constBytes = append(img.constBytes, in.ConstAt(uint32(id))...)
		img.constOffs = append(img.constOffs, uint32(len(img.constBytes)))
	}
	img.predOffs = make([]uint32, 1, in.NumPreds()+1)
	for id := 0; id < in.NumPreds(); id++ {
		img.predBytes = append(img.predBytes, in.PredAt(uint32(id))...)
		img.predOffs = append(img.predOffs, uint32(len(img.predBytes)))
	}
	if len(img.constBytes) >= math.MaxInt32 || len(img.predBytes) >= math.MaxInt32 {
		return nil, fmt.Errorf("store: symbol arena exceeds the uint32 offset space")
	}

	// Schema and key metadata. Key widths clamp into {none} ∪ [0, arity]:
	// keyOf semantics ignore a key wider than the arity.
	schema := db.Schema()
	kwEff := make([]int, in.NumPreds()) // effective key width for block cuts
	for id := 0; id < in.NumPreds(); id++ {
		name := in.PredAt(uint32(id))
		arity := schema[name]
		kw := arity
		enc := uint32(0) // no key
		if w, ok := ks.Width(name); ok {
			enc = uint32(w) + 1
			if w <= arity {
				kw = w
			}
		}
		kwEff[id] = kw
		img.schema = append(img.schema, uint32(arity), enc)
	}
	// Keys whose predicate owns no serialized schema entry (no live fact
	// re-interned it — either absent from the data or deleted down to zero)
	// travel in the extra-key section instead.
	var extra []string
	for _, p := range ks.Predicates() {
		if _, used := in.LookupPred(p); !used {
			extra = append(extra, p)
		}
	}
	var ebuf [4]byte
	le.PutUint32(ebuf[:], uint32(len(extra)))
	img.extraKeys = append(img.extraKeys, ebuf[:]...)
	for _, p := range extra {
		w, _ := ks.Width(p)
		le.PutUint32(ebuf[:], uint32(w))
		img.extraKeys = append(img.extraKeys, ebuf[:]...)
		le.PutUint32(ebuf[:], uint32(len(p)))
		img.extraKeys = append(img.extraKeys, ebuf[:]...)
		img.extraKeys = append(img.extraKeys, p...)
	}

	// Active domain: constant IDs in sorted-symbol order.
	img.domOrder = make([]uint32, in.NumConsts())
	for i := range img.domOrder {
		img.domOrder[i] = uint32(i)
	}
	sort.Slice(img.domOrder, func(i, j int) bool {
		return in.ConstAt(img.domOrder[i]) < in.ConstAt(img.domOrder[j])
	})

	if opts.Blocks {
		img.flags |= flagBlocks
		img.blockBnds = blockBoundaries(img.fpred, img.factOffs, img.factArgs,
			func(pred uint32) uint32 { return uint32(kwEff[pred]) })
	}
	if opts.Postings {
		img.flags |= flagPostings
		img.buildPostings()
	}
	return img, nil
}

// blockBoundaries cuts a canonical fact sequence into its conflict
// blocks: a new block starts whenever the predicate or the effective key
// prefix changes. Because the canonical fact order sorts by predicate and
// then argument-wise, facts sharing a key value are contiguous and the
// resulting block sequence is exactly the lexicographic order ≺(D,Σ) that
// relational.Blocks produces. Shared by the writer and (for snapshots
// written without the precomputed section) the loader.
func blockBoundaries(fpred, factOffs, factArgs []uint32, kwEff func(pred uint32) uint32) []uint32 {
	n := len(fpred)
	bounds := make([]uint32, 1, n+1)
	for i := 1; i < n; i++ {
		if fpred[i] != fpred[i-1] {
			bounds = append(bounds, uint32(i))
			continue
		}
		kw := kwEff(fpred[i])
		a := factArgs[factOffs[i]:][:kw]
		b := factArgs[factOffs[i-1]:][:kw]
		if !relational.U32Equal(a, b) {
			bounds = append(bounds, uint32(i))
		}
	}
	if n > 0 {
		bounds = append(bounds, uint32(n))
	}
	return bounds
}

// buildPostings materializes the (predicate, argument position, constant)
// posting lists in ascending triple order, each list ascending — the exact
// contents eval.Index computes lazily, precomputed once at build time.
func (img *image) buildPostings() {
	type key struct{ pred, pos, cid uint32 }
	lists := map[key][]uint32{}
	for i := range img.fpred {
		args := img.factArgs[img.factOffs[i]:img.factOffs[i+1]]
		for pos, cid := range args {
			k := key{pred: img.fpred[i], pos: uint32(pos), cid: cid}
			lists[k] = append(lists[k], uint32(i))
		}
	}
	keys := make([]key, 0, len(lists))
	for k := range lists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pred != b.pred {
			return a.pred < b.pred
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.cid < b.cid
	})
	img.postOffs = make([]uint32, 1, len(keys)+1)
	for _, k := range keys {
		img.postKeys = append(img.postKeys, k.pred, k.pos, k.cid)
		img.postOrds = append(img.postOrds, lists[k]...)
		img.postOffs = append(img.postOffs, uint32(len(img.postOrds)))
	}
}

// section pairs a section ID with its payload length and emitter.
type section struct {
	id   uint32
	size uint64
	emit func(*crcWriter) error
}

// sections lists the image's sections in file order.
func (img *image) sections() []section {
	bytesSec := func(id uint32, b []byte) section {
		return section{id: id, size: uint64(len(b)), emit: func(w *crcWriter) error { return w.bytes(b) }}
	}
	u32Sec := func(id uint32, v []uint32) section {
		return section{id: id, size: 4 * uint64(len(v)), emit: func(w *crcWriter) error { return w.u32s(v) }}
	}
	out := []section{
		bytesSec(secConstBytes, img.constBytes),
		u32Sec(secConstOffs, img.constOffs),
		bytesSec(secPredBytes, img.predBytes),
		u32Sec(secPredOffs, img.predOffs),
		u32Sec(secSchema, img.schema),
		bytesSec(secExtraKeys, img.extraKeys),
		u32Sec(secFactPred, img.fpred),
		u32Sec(secFactOffs, img.factOffs),
		u32Sec(secFactArgs, img.factArgs),
		u32Sec(secDomOrder, img.domOrder),
	}
	if img.flags&flagBlocks != 0 {
		out = append(out, u32Sec(secBlockBounds, img.blockBnds))
	}
	if img.flags&flagPostings != 0 {
		out = append(out,
			u32Sec(secPostKeys, img.postKeys),
			u32Sec(secPostOffs, img.postOffs),
			u32Sec(secPostOrds, img.postOrds))
	}
	return out
}

// stream writes header, section table, padded sections and the checksum
// trailer, accumulating the CRC as it goes.
func (img *image) stream(w io.Writer) (uint64, error) {
	secs := img.sections()
	off := uint64(headerSize + entrySize*len(secs))
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		off = align8(off)
		offsets[i] = off
		off += s.size
	}
	fileSize := off + trailerLen

	cw := &crcWriter{w: w}
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	le.PutUint32(hdr[4:], version)
	le.PutUint32(hdr[8:], img.flags)
	le.PutUint32(hdr[12:], uint32(len(secs)))
	le.PutUint64(hdr[16:], fileSize)
	if err := cw.bytes(hdr[:]); err != nil {
		return 0, err
	}
	var ent [entrySize]byte
	for i, s := range secs {
		le.PutUint32(ent[0:], s.id)
		le.PutUint32(ent[4:], 0)
		le.PutUint64(ent[8:], offsets[i])
		le.PutUint64(ent[16:], s.size)
		if err := cw.bytes(ent[:]); err != nil {
			return 0, err
		}
	}
	for i, s := range secs {
		if err := cw.pad(offsets[i]); err != nil {
			return 0, err
		}
		if err := s.emit(cw); err != nil {
			return 0, err
		}
	}
	digest := uint64(cw.crc)
	var tr [trailerLen]byte
	le.PutUint64(tr[:], digest)
	return digest, cw.bytes(tr[:])
}

// crcWriter streams bytes to w while folding them into a running
// CRC-32C and tracking the absolute offset.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
	buf [1 << 14]byte
}

func (c *crcWriter) bytes(b []byte) error {
	c.crc = crc32.Update(c.crc, crcTable, b)
	c.n += uint64(len(b))
	_, err := c.w.Write(b)
	return err
}

// u32s emits a uint32 column little-endian, in chunks of the scratch
// buffer.
func (c *crcWriter) u32s(vals []uint32) error {
	for len(vals) > 0 {
		n := len(c.buf) / 4
		if n > len(vals) {
			n = len(vals)
		}
		for i, v := range vals[:n] {
			le.PutUint32(c.buf[4*i:], v)
		}
		if err := c.bytes(c.buf[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// pad writes zero bytes up to the absolute offset off.
func (c *crcWriter) pad(off uint64) error {
	var zero [8]byte
	for c.n < off {
		k := off - c.n
		if k > uint64(len(zero)) {
			k = uint64(len(zero))
		}
		if err := c.bytes(zero[:k]); err != nil {
			return err
		}
	}
	return nil
}

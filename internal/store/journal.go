package store

import (
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repaircount/internal/faultfs"
	"repaircount/internal/relational"
)

// JournalOp is one journaled mutation: the insertion (Del=false) or
// deletion (Del=true) of a fact.
type JournalOp struct {
	Del  bool
	Fact relational.Fact
}

// EncodeJournal serializes ops as one self-contained journal block, ready
// to append after a sealed snapshot. It fails on empty op lists and on
// symbols exceeding the format's length fields.
func EncodeJournal(ops []JournalOp) ([]byte, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("store: empty journal block")
	}
	if len(ops) > math.MaxUint32 {
		return nil, fmt.Errorf("store: %d ops exceed the journal count field", len(ops))
	}
	var payload []byte
	var u16 [2]byte
	var u32 [4]byte
	for _, op := range ops {
		b := byte(opInsert)
		if op.Del {
			b = opDelete
		}
		payload = append(payload, b)
		if len(op.Fact.Pred) > math.MaxUint16 {
			return nil, fmt.Errorf("store: predicate of %d bytes exceeds the journal length field", len(op.Fact.Pred))
		}
		le.PutUint16(u16[:], uint16(len(op.Fact.Pred)))
		payload = append(payload, u16[:]...)
		payload = append(payload, op.Fact.Pred...)
		if len(op.Fact.Args) > math.MaxUint16 {
			return nil, fmt.Errorf("store: arity %d exceeds the journal count field", len(op.Fact.Args))
		}
		le.PutUint16(u16[:], uint16(len(op.Fact.Args)))
		payload = append(payload, u16[:]...)
		for _, a := range op.Fact.Args {
			if len(a) > math.MaxInt32 {
				return nil, fmt.Errorf("store: constant of %d bytes exceeds the journal length field", len(a))
			}
			le.PutUint32(u32[:], uint32(len(a)))
			payload = append(payload, u32[:]...)
			payload = append(payload, a...)
		}
	}
	block := make([]byte, 0, journalHeaderSize+len(payload)+journalTrailerLen)
	block = append(block, journalMagic...)
	le.PutUint32(u32[:], uint32(len(ops)))
	block = append(block, u32[:]...)
	var u64 [8]byte
	le.PutUint64(u64[:], uint64(len(payload)))
	block = append(block, u64[:]...)
	block = append(block, payload...)
	le.PutUint64(u64[:], uint64(crc32.Checksum(block, crcTable)))
	return append(block, u64[:]...), nil
}

// parseJournal decodes the journal region of a snapshot (every byte after
// the sealed base) into the op sequence, validating each block's framing,
// checksum and op structure. It is strict: a torn tail is an error here
// (RecoverFile is the repair path).
func parseJournal(data []byte) ([]JournalOp, error) {
	ops, valid, err := scanJournal(data)
	if err != nil {
		return nil, err
	}
	if valid != len(data) {
		return nil, corrupt("torn journal tail: %d bytes after the last complete block (recover the file first)", len(data)-valid)
	}
	return ops, nil
}

// scanJournal decodes the longest valid prefix of a journal region. It
// returns the ops of every complete, checksummed block and the byte
// length of that prefix. A trailing region explainable by a torn append —
// a partial block frame, a payload overrunning the file, or a final
// full-length block failing its checksum (pages can persist out of
// order) — is not an error: the scan stops before it and valid <
// len(data). Damage that truncation cannot explain — garbage where a
// block must start, a checksum failure before the final block, or a
// checksummed block whose ops are malformed — is corruption and fails
// loudly: recovery must never silently drop a committed block.
func scanJournal(data []byte) (ops []JournalOp, valid int, err error) {
	off := 0
	for blockNo := 0; off < len(data); blockNo++ {
		rest := data[off:]
		if len(rest) >= len(journalMagic) && string(rest[:len(journalMagic)]) != journalMagic {
			return nil, 0, corrupt("journal block %d: bad magic %q", blockNo, rest[:len(journalMagic)])
		}
		if len(rest) < journalHeaderSize+journalTrailerLen {
			return ops, off, nil // torn: partial block frame
		}
		count := le.Uint32(rest[4:])
		plen := le.Uint64(rest[8:])
		total := uint64(journalHeaderSize) + plen + journalTrailerLen
		if plen > uint64(len(rest)) || total > uint64(len(rest)) {
			return ops, off, nil // torn: payload overruns the file
		}
		body := rest[:journalHeaderSize+plen]
		if got, want := uint64(crc32.Checksum(body, crcTable)), le.Uint64(rest[journalHeaderSize+plen:]); got != want {
			if total == uint64(len(rest)) {
				return ops, off, nil // torn: final block, checksum incomplete
			}
			return nil, 0, corrupt("journal block %d: checksum mismatch: block says %#x, content hashes to %#x", blockNo, want, got)
		}
		if count == 0 {
			return nil, 0, corrupt("journal block %d: zero ops", blockNo)
		}
		p := body[journalHeaderSize:]
		blockOps, err := parseJournalOps(p, blockNo, count)
		if err != nil {
			return nil, 0, err
		}
		ops = append(ops, blockOps...)
		off += int(total)
	}
	return ops, off, nil
}

// parseJournalOps decodes the op records of one checksummed block payload.
func parseJournalOps(p []byte, blockNo int, count uint32) ([]JournalOp, error) {
	ops := make([]JournalOp, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 3 {
			return nil, corrupt("journal block %d: op %d is truncated", blockNo, i)
		}
		kind := p[0]
		if kind != opInsert && kind != opDelete {
			return nil, corrupt("journal block %d: op %d has unknown kind %d", blockNo, i, kind)
		}
		predLen := int(le.Uint16(p[1:]))
		p = p[3:]
		if predLen == 0 {
			return nil, corrupt("journal block %d: op %d has an empty predicate", blockNo, i)
		}
		if len(p) < predLen+2 {
			return nil, corrupt("journal block %d: op %d predicate overruns the payload", blockNo, i)
		}
		pred := string(p[:predLen])
		nargs := int(le.Uint16(p[predLen:]))
		p = p[predLen+2:]
		args := make([]relational.Const, nargs)
		for a := 0; a < nargs; a++ {
			if len(p) < 4 {
				return nil, corrupt("journal block %d: op %d argument %d is truncated", blockNo, i, a)
			}
			alen := le.Uint32(p)
			if uint64(alen) > uint64(len(p)-4) {
				return nil, corrupt("journal block %d: op %d argument %d overruns the payload", blockNo, i, a)
			}
			args[a] = relational.Const(p[4 : 4+alen])
			p = p[4+alen:]
		}
		ops = append(ops, JournalOp{Del: kind == opDelete, Fact: relational.Fact{Pred: pred, Args: args}})
	}
	if len(p) != 0 {
		return nil, corrupt("journal block %d: %d payload bytes left after %d ops", blockNo, len(p), count)
	}
	return ops, nil
}

// AppendJournal appends ops as one journal block to the snapshot file at
// path, without touching the sealed base bytes. Before writing, the
// current file (base plus any earlier journal blocks) is loaded and the
// new ops are replayed against it in memory, so an op the snapshot cannot
// absorb — an arity clash, or a file whose journal region is already
// damaged — fails the append instead of poisoning every future load. The
// write itself extends the file by one self-contained block; earlier
// bytes are never modified.
func AppendJournal(path string, ops []JournalOp) error {
	block, err := EncodeJournal(ops)
	if err != nil {
		return err
	}
	// Dry-run the ops against the loaded snapshot. This also proves the
	// existing base and journal region decode cleanly end to end.
	snap, err := Open(path)
	if err != nil {
		return err
	}
	live, err := snap.Live()
	if err != nil {
		snap.Close()
		return err
	}
	for i, op := range ops {
		if _, err := live.Apply(op.Del, op.Fact); err != nil {
			snap.Close()
			return fmt.Errorf("store: journal op %d (%s) cannot apply to %s: %w", i, op.Fact, path, err)
		}
	}
	if err := snap.Close(); err != nil {
		return err
	}

	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	f, err := faultfs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(block, st.Size()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RecoverFile repairs a snapshot whose last journal append was torn by a
// crash: it validates the sealed base, scans the journal region for its
// longest valid block prefix, proves the file truncated to that prefix
// loads cleanly, and truncates (with an fsync) — the recovered snapshot
// is bit-identical to the last committed state. It returns the number of
// torn bytes dropped (0 for an already-clean file). Damage beyond a torn
// tail — a base failing its checksum, garbage between blocks, a
// checksummed block that does not decode — is an error: RecoverFile never
// invents a state, so a recovered file either matches a state that was
// committed or the call fails loudly.
func RecoverFile(path string) (dropped int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < headerSize+trailerLen {
		return 0, corrupt("%d bytes is shorter than header plus trailer", len(data))
	}
	if string(data[:4]) != magic {
		return 0, corrupt("bad magic %q", data[:4])
	}
	base := le.Uint64(data[16:])
	if base < headerSize+trailerLen || base > uint64(len(data)) {
		// The base is written atomically (temp file + rename), so a header
		// claiming more bytes than the file holds is not a torn append.
		return 0, corrupt("header says %d bytes, have %d", base, len(data))
	}
	if _, err := Decode(data[:base]); err != nil {
		return 0, err
	}
	_, valid, err := scanJournal(data[base:])
	if err != nil {
		return 0, err
	}
	keep := int64(base) + int64(valid)
	dropped = int64(len(data)) - keep
	if dropped == 0 {
		return 0, nil
	}
	// Prove the truncated image loads before committing the truncation.
	if _, err := Decode(data[:keep]); err != nil {
		return 0, fmt.Errorf("store: recovered prefix of %s does not load: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return dropped, nil
}

// CompactFile reseals the snapshot at src — base plus any appended journal
// — as a clean, journal-free snapshot at dst with all precomputed
// sections. The compacted snapshot loads to the same instance (and the
// same counts) as replaying the journal.
func CompactFile(src, dst string) error {
	snap, err := Open(src)
	if err != nil {
		return err
	}
	defer snap.Close()
	db, err := snap.Database()
	if err != nil {
		return err
	}
	ks, err := snap.Keys()
	if err != nil {
		return err
	}
	return WriteFile(dst, db, ks)
}

// Package store implements the persistent instance store: a versioned,
// checksummed binary snapshot format (".cqs") holding one database instance
// — symbol table, fact arenas, key metadata, and optional precomputed
// block-partition and posting-list sections — laid out so that a loader can
// reconstruct the full counting substrate (relational.Database, the
// canonical block sequence, eval.Index) by aliasing the file bytes instead
// of parsing text, with a constant number of allocations.
//
// # Format (version 1)
//
// All integers are little-endian. The file is
//
//	header | section table | sections… | crc64 trailer
//
// with a 32-byte header:
//
//	offset 0  magic "CQS1"
//	offset 4  uint32 version (currently 1)
//	offset 8  uint32 flags (bit 0: block section, bit 1: posting sections)
//	offset 12 uint32 section count
//	offset 16 uint64 total file size in bytes (including the trailer)
//	offset 24 uint64 reserved (zero)
//
// The section table has one 24-byte entry per section — uint32 id, uint32
// zero padding, uint64 absolute byte offset, uint64 byte length — in
// ascending offset order. Section payloads start at 8-byte-aligned offsets
// (the gap between sections is zero padding), which is what lets the loader
// reinterpret mapped bytes directly as uint32 columns. The final 8 bytes of
// the file are the CRC-32C (Castagnoli) checksum of everything before
// them, zero-extended to 64 bits — Castagnoli because commodity CPUs hash
// it in hardware, so verifying a load costs a fraction of the mapping
// traffic itself.
//
// Sections (†: uint32 column, aliased on load):
//
//	 1 constBytes  concatenated constant symbols (UTF-8)
//	 2 constOffs†  numConsts+1 ascending offsets into constBytes
//	 3 predBytes   concatenated predicate symbols
//	 4 predOffs†   numPreds+1 ascending offsets into predBytes
//	 5 schema†     numPreds × {arity, keyWidth+1} (keyWidth+1 = 0: no key)
//	 6 extraKeys   keys on predicates without facts: count, then
//	               {width, nameLen, name bytes} per key (byte-packed)
//	 7 factPred†   numFacts predicate IDs, facts in canonical order
//	 8 factOffs†   numFacts+1 word offsets into factArgs
//	 9 factArgs†   concatenated argument constant IDs of every fact
//	10 domOrder†   numConsts constant IDs sorted by symbol (active domain)
//	11 blockBounds† numBlocks+1 fact-ordinal boundaries of the canonical
//	               block sequence (flag bit 0)
//	12 postKeys†   numLists × {pred, argPos, constID} (flag bit 1)
//	13 postOffs†   numLists+1 offsets into postOrds
//	14 postOrds†   concatenated ascending fact ordinals per posting list
//
// Facts are serialized in the canonical fact order, so per-predicate ranges
// are contiguous, the canonical conflict-block sequence ≺(D,Σ) is exactly
// the run decomposition of the fact column by (predicate, key prefix), and
// a block's facts subslice the loaded fact arena.
//
// Decoding validates the file exhaustively — section bounds, offset
// monotonicity, symbol-ID ranges and symbol uniqueness, per-fact arity
// against the schema, strict canonical fact order, and the optional
// sections' full content (the block boundaries must equal the fact
// column's run decomposition; the posting lists are proven sound and
// complete against the argument slots) — before any column is handed out,
// so a corrupted or adversarial snapshot produces an error, never a panic,
// an out-of-range access, or a silently wrong count at query time.
//
// # Delta journal
//
// A snapshot is sealed — its header records the exact file size and the
// trailer checksums everything before it — but it need not be rewritten to
// absorb mutations: any number of self-contained journal blocks may be
// appended after the sealed region ("the base"), each recording a batch of
// fact inserts and deletes. AppendJournal writes one block per call after
// dry-running the ops against the loaded file (so an unabsorbable op fails
// the append instead of poisoning future loads), never touching the base
// bytes; the loader replays the ops
// through the incremental-maintenance machinery (relational.Database
// tombstones, relational.BlockSeq, eval.Index deltas) after materializing
// the base, so a journaled snapshot loads to exactly the instance the
// mutations describe; Compact reseals a clean, journal-free snapshot.
//
// One journal block is
//
//	offset 0  magic "CQSJ"
//	offset 4  uint32 op count (> 0)
//	offset 8  uint64 payload byte length
//	offset 16 payload: ops back to back, each
//	          uint8  op (0 insert, 1 delete)
//	          uint16 predicate byte length, then the predicate (UTF-8)
//	          uint16 argument count, then per argument
//	          uint32 byte length followed by the constant bytes
//	then      uint64 CRC-32C of the block from its magic through the
//	          payload, zero-extended (same convention as the base trailer)
//
// Blocks are parsed in order; every block is validated structurally and by
// checksum before any op is replayed, and a truncated or corrupted journal
// region fails the whole load — mutations are either all visible or the
// file is rejected, never half-applied.
//
// # Shard manifest (CQSM)
//
// A sealed snapshot can be sliced into K self-contained shard snapshots —
// each an ordinary version-1 .cqs file holding one group of the query's
// interaction-graph components plus every shared (single-fact relevant)
// block — and a CQSM manifest binding the set together (see shard.go; the
// partition itself is computed by the counting layer). The manifest is one
// block:
//
//	offset 0  magic "CQSM"
//	offset 4  uint32 version (currently 1)
//	offset 8  uint32 shard count K (> 0)
//	offset 12 uint32 query byte length
//	offset 16 uint64 parent snapshot's sealed-base digest (0 if the shard
//	          set was cut from a non-snapshot source)
//	offset 24 uint32 outer-factor byte length
//	offset 28 query bytes (canonical query rendering, UTF-8), then the
//	          outer factor as a decimal big integer — Π|B_i| over the
//	          blocks excluded from every shard
//	then      K × 24-byte shard entries: uint64 sealed-base digest of the
//	          shard snapshot, uint64 planned engine cost, uint32 exclusive
//	          conflicting blocks, uint32 components
//	then      uint64 CRC-32C of everything before, zero-extended (same
//	          convention as the base trailer). This value is the manifest
//	          digest that partial files echo.
//
// A shard's counting result travels as a CQSP partial file — a fixed
// six-line text form (version, manifest digest, shard index of K, shard
// snapshot digest, and the decimal Inner/NonEnt totals; see shard.go) —
// and MergePartials recombines a complete, digest-verified set as
// (Π Inner − Π NonEnt) × Outer. Any stale, mixed, duplicated or missing
// piece fails the merge; a wrong count is never produced. A "CQSP 2"
// partial appends two lines — "epoch N" and "applied N" — stamping the
// coordinator epoch and the worker's applied-ops version for the
// distributed path (internal/cluster); version-1 readers reject them,
// version-2 readers accept both forms.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Format constants of version 1.
const (
	magic      = "CQS1"
	version    = 1
	headerSize = 32
	entrySize  = 24 // one section-table entry
	trailerLen = 8  // crc32c, zero-extended
)

// Flag bits recording which optional sections are present.
const (
	flagBlocks   = 1 << 0
	flagPostings = 1 << 1
)

// Delta-journal constants (see the package comment for the block layout).
const (
	journalMagic      = "CQSJ"
	journalHeaderSize = 16 // magic, op count, payload length
	journalTrailerLen = 8  // crc32c, zero-extended

	opInsert = 0
	opDelete = 1
)

// Shard-manifest and partial-file constants (see the package comment).
const (
	manifestMagic      = "CQSM"
	manifestVersion    = 1
	manifestHeaderSize = 28 // magic, version, K, query len, base digest, outer len
	manifestTrailerLen = 8  // crc32c, zero-extended

	partialVersion  = 1
	partialVersion2 = 2
)

// Section identifiers.
const (
	secConstBytes  = 1
	secConstOffs   = 2
	secPredBytes   = 3
	secPredOffs    = 4
	secSchema      = 5
	secExtraKeys   = 6
	secFactPred    = 7
	secFactOffs    = 8
	secFactArgs    = 9
	secDomOrder    = 10
	secBlockBounds = 11
	secPostKeys    = 12
	secPostOffs    = 13
	secPostOrds    = 14

	maxSectionID = 14
)

// crcTable is the CRC-32C (Castagnoli) table shared by the writer and the
// loader; this polynomial has hardware support on amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// le is the format's byte order.
var le = binary.LittleEndian

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// corrupt builds the uniform decode error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("store: corrupt snapshot: "+format, args...)
}

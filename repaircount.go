// Package repaircount counts database repairs under primary keys: a
// complete, executable implementation of Calautti, Console & Pieris,
// "Counting Database Repairs under Primary Keys Revisited" (PODS 2019).
//
// Given a database D, a set Σ of primary keys and a Boolean query Q, the
// package computes:
//
//   - the total number of repairs |rep(D,Σ)| (polynomial time);
//   - #CQA(Q,Σ)(D): the number of repairs entailing Q — exactly (safe
//     plans for tractable self-join-free CQs; otherwise a planner that
//     picks, per connected component of the query-interaction graph, the
//     cheaper of Gray-code enumeration and inclusion–exclusion) or
//     approximately (the paper's Theorem 6.2 FPRAS);
//   - the decision #CQA>0 (logspace-style certificate search for ∃FO⁺,
//     Lemma 3.5);
//   - the relative frequency #CQA / |rep| motivating the whole problem.
//
// Quickstart:
//
//	db, keys, _ := repaircount.ParseInstanceString(`
//	    key Employee 1
//	    Employee(1, Bob, HR)
//	    Employee(1, Bob, IT)
//	    Employee(2, Alice, IT)
//	    Employee(2, Tim, IT)`)
//	q, _ := repaircount.ParseQuery(
//	    "exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
//	c, _ := repaircount.NewCounter(db, keys, q)
//	total := c.Total()                  // 4
//	count, algo, _ := c.Count()         // 2, via certificate machinery
//	freq, _ := c.RelativeFrequency()    // 1/2
//
// The deeper machinery — the Λ-hierarchy compactors of Definition 4.1,
// the Algorithm 1 transducer, the Theorem 5.1 reduction, the Λ[k]-complete
// problems of Section 7 — lives in the internal packages and is exercised
// by the examples, the test suite and the benchmark harness.
//
// # Architecture: the interned-ID substrate
//
// Every hot kernel runs on dense integer IDs rather than strings. The
// relational layer interns each constant and predicate into a symbol table
// (internal/relational.Interner, Const ↔ uint32), stores the interned
// encoding of every fact alongside the fact itself, and resolves
// membership, de-duplication, consistency checks and conflict-block
// decomposition through integer-keyed hash probes that verify
// structurally — a canonical string is never built on these paths, and
// block decomposition performs a constant number of allocations however
// large the database. The evaluation layer (internal/eval.Index) numbers
// the indexed facts with stable ordinals in canonical order and maintains
// posting lists keyed by (predicate, argument position, constant ID).
// Homomorphism search — the engine behind Lemma 3.5 decisions, UCQ
// evaluation, and certificate enumeration — compiles each conjunctive
// query against the symbol table once, then backtracks with flat int32
// environments, choosing at every depth the pending atom with the fewest
// candidate facts under the current partial binding (bound-variable
// selectivity) and probing the posting lists instead of scanning every
// fact of a predicate. The FPRAS membership test reuses the same engine
// through a compiled matcher restricted to the facts a sampled tuple
// chose, so one Algorithm 3 sample costs one small indexed join and zero
// allocations rather than building a fresh index per repair.
//
// # Factorized exact counting
//
// The exact counters no longer enumerate the full product space of
// conflict blocks. CountFactorized partitions the relevant blocks into
// connected components of the query-interaction graph — two blocks
// interact when they can co-occur in the image of one Σ-consistent
// homomorphism of some disjunct, computed from the interned index's
// posting lists. Every homomorphic image lives inside one component, so
// the non-entailment predicate factorizes and
//
//	#Q = Π_i |B_i| − Π_c #¬Q_c,
//
// dropping the enumeration cost from Π_c 2^{n_c} to Σ_c 2^{n_c}. Each
// component's choices are walked in mixed-radix Gray-code order —
// consecutive repairs differ by exactly one fact swap — against the single
// shared index, with match state maintained incrementally: each
// homomorphic image is a box of (block, choice) requirements whose
// violation count is updated only for the boxes pinning the swapped facts,
// so one repair costs a handful of counter bumps and the inner loop
// allocates nothing. When the homomorphism space is too large to
// materialize as boxes, the engine falls back to predicate-level
// components and probes the compiled matcher through a mutable
// allowed-ordinal bitmask (two bit flips per repair) — still never
// building a per-repair index. Component odometer spaces are split into
// prefix shards served to workers from an atomic work-stealing queue, with
// per-worker machine-word accumulators that spill to big.Int only on
// overflow and at the final merge; the exact count is identical for every
// worker count.
//
// # The exact-counting planner
//
// The factorized engine is itself a strategy layer. Per component, two
// independent exact strategies compute #¬Q_c: the Gray-delta walk above
// (cost 2^{n_c} states, independent of the number of boxes) and
// component-local inclusion–exclusion over the component's boxes (cost
// bounded by 2^{#boxes} − 1 subset nodes, independent of the choice
// space), and the tractable one varies per component, not per instance. A
// typed planner (internal/repairs/plan.go) therefore costs every component
// under both engines and assigns the cheaper — so a 40-block component
// with 3 boxes is a 7-term IE sum instead of an infeasible 2^40-state
// walk, the effective enumeration budget becomes Σ_c min(2^{n_c}, IE_c),
// and components whose choice space overflows a machine word entirely stay
// exactly countable (IE counts the complement against the big-int space).
// The heterogeneous per-component jobs — Gray prefix shards, masked
// shards, one IE pass per IE component — drain from the same work-stealing
// queue. CountExact consumes the plan report: safe plan and Λ[1] closed
// form when they apply, then the planned factorized engine, with
// whole-instance certificate inclusion–exclusion and plain enumeration as
// fallbacks; Count reports the deciding engine as a typed EngineKind, and
// Counter.ExplainPlan (repairctl count -explain) exposes every
// component's block and box counts, both engine costs and the chosen
// engine without counting. The per-component structural count memo is
// keyed by (engine, structure), so incremental recounts after Apply replan
// only the touched components and forced-engine comparisons (repairctl
// count -exact=gray, the PlannedIE benchmark gate) never serve each
// other's memo entries.
//
// # Persistent snapshots: the .cqs instance store
//
// The interned encoding doubles as an on-disk format. internal/store
// serializes an instance (D, Σ) as a versioned, checksummed, little-endian
// columnar snapshot: a 32-byte header (magic "CQS1", version, flags, file
// size), a section table of (id, offset, length) entries at 8-byte-aligned
// offsets, the sections themselves — symbol byte arenas with offset
// columns, per-fact predicate/argument-ID columns in canonical fact order,
// key metadata, plus optional precomputed sections holding the canonical
// conflict-block boundaries and the (predicate, position, constant)
// posting lists — and a trailing CRC-32C of the whole file. Loading
// mmaps the file (with a portable read-into-aligned-buffer fallback),
// validates every section exhaustively, and reconstructs the Database, the
// block sequence and the evaluation index by aliasing the mapped arenas:
// no text is parsed, no sort or hash build is repeated, and the load
// performs a constant number of allocations regardless of instance size
// (symbol→ID maps and membership buckets are materialized lazily on the
// first probe that needs them). OpenSnapshot / (*Counter).Snapshot expose
// the store here; repairctl build converts text instances, and
// repairctl count/decide accept either format transparently.
//
// # Incremental maintenance: versioned mutable instances
//
// Instances are not build-once-then-read: Counter.Apply and
// Snapshot.Apply thread single-fact inserts and deletes (Delta values)
// through every layer incrementally, with a monotonically increasing
// instance version. The relational layer keeps its columns append-only —
// an insert appends a fresh fact ordinal, a delete tombstones one — so
// structures keyed by ordinals stay valid across deltas and snapshot-
// backed instances never write through their read-only mapping. The
// maintained block sequence (relational.BlockSeq) updates only the touched
// conflict block, splicing blocks in and out of their canonical ≺(D,Σ)
// position, so the sequence always equals a from-scratch decomposition.
// The evaluation index maintains its membership buckets, posting lists,
// per-predicate candidate lists, refcounted active domain and key
// partitions per delta instead of rebuilding. Counting remains valid
// between deltas: every entry point refreshes against the substrate
// version, recompiling the (cheap) matchers and domains while the
// factorized engine's per-component counts survive in a structural memo —
// a recount after a delta re-enumerates only the connected components
// whose blocks changed, which is what makes recount-after-delta an order
// of magnitude faster than rebuild-from-scratch, bit-identically.
//
// On disk, a sealed .cqs snapshot absorbs mutations without being
// rewritten: AppendJournal appends self-contained, checksummed journal
// blocks of ops after the sealed base (repairctl apply from the command
// line), the loader replays them through the same delta machinery, and
// CompactSnapshot (repairctl compact) reseals a clean snapshot with
// identical counts.
//
// # Sharded counting
//
// The factorization #Q = Π|B_i| − Π_c #¬Q_c makes connected components
// independent by construction, so the exact count distributes with zero
// coordination. Counter.PlanShards bin-packs the components into K groups
// by planned engine cost (greedy LPT: the heaviest component lands on the
// lightest shard, so one expensive component occupies one shard instead of
// serializing the fleet), and the partition runs two ways. In process,
// Counter.CountSharded materializes one sub-instance per shard — its
// exclusive conflicting blocks plus every shared single-fact relevant
// block, which any homomorphic image may use — and worker goroutines drain
// shards from a work-stealing queue, each running an independent planned
// counter; the merge (Π_s Inner_s − Π_s NonEnt_s) × Outer is exact big-int
// arithmetic and bit-identical to the single-driver planner for every K.
// Across processes, Snapshot.Shard slices a sealed snapshot into K
// self-contained, CRC-valid shard snapshots plus a CQSM manifest recording
// the partition, the per-shard digests and the global factor split
// (repairctl shard); each shard is counted anywhere by `repairctl count
// -shard`, which verifies the shard's digest and query against the
// manifest and emits a CQSP partial file; and MergePartialFiles (repairctl
// merge) recombines a complete partial set, verifying every digest — a
// stale, mixed, duplicated or missing shard errors instead of miscounting.
// Blocks no homomorphic image touches (irrelevant blocks and box-free
// conflicting blocks) are excluded from every shard and their Π|B_i|
// factor is restored at merge time. An always-true instance needs no
// special case: every shard sees the witnessing homomorphism among its
// shared facts and reports a zero non-entailment partial.
//
// # Parallel sampling and reproducibility
//
// The Theorem 6.2 FPRAS and the Karp–Luby estimator offer sharded
// parallel sampling loops (Counter.ApproximateParallel, and ApxParallel /
// KarpLubyParallel on the internal instance). A sample budget t is split
// across a fixed number of shards (64, independent of the worker count);
// shard s draws its samples from its own PCG stream seeded as
// (userSeed, golden-ratio-constant + s), and workers drain shards from a
// queue. Because both the shard → stream and shard → sample-count
// assignments are fixed, the total hit count — and hence the estimate —
// is bit-for-bit identical for every worker count and scheduling, while
// still scaling across cores.
//
// # Serving: the repairctl daemon
//
// internal/server wraps the whole stack as a long-lived HTTP/JSON daemon
// (`repairctl serve`): one mmapped snapshot, a bounded worker pool
// answering /v1/count, /v1/decide, /v1/explain, /v1/rank and /v1/total
// probes, with per-worker matcher and counter reuse over the shared live
// substrate. Three robustness layers make it safe to leave running:
//
//   - Admission ladder. Every count probe is priced before it runs, using
//     the same planner report ExplainPlan exposes. Plans within the exact
//     budget run the exact engines; plans beyond it degrade to the FPRAS
//     with the response reporting the (ε, δ) actually served — but only
//     when the Theorem 6.2 sample bound itself fits the sample budget;
//     anything costlier (including non-∃FO⁺ queries, which have no FPRAS
//     unless RP = NP) is refused with a structured budget_exceeded error
//     rather than wedging a worker. The ladder is exact → approximate →
//     typed refusal, never silence.
//   - Cooperative cancellation. Deadlines and client disconnects thread a
//     stop flag (core.Stop) through every enumeration kernel — the
//     Gray/masked walkers, the IE subset DFS, the enumeration fallback and
//     the sampling loops poll it at a coarse stride — so an abandoned
//     probe frees its workers within a bounded number of states.
//     CountCtx / ApproximateParallelCtx / CountShardedCtx / CountPartialCtx
//     expose the same plumbing here.
//   - Crash safety. The daemon tails an append-only ops file, applies
//     deltas through the live substrate, journals them with fsync'd
//     AppendJournal, and compacts by atomic temp-file-plus-rename
//     (WriteSnapshot's file path does the same). On startup,
//     RecoverSnapshot truncates a torn journal tail back to the last
//     committed block — a kill -9 at any byte of the write path leaves a
//     file that recovers to a committed state bit-identically or fails
//     loudly, never one that miscounts (internal/faultfs sweeps every
//     crash point in the tests).
//
// # Distributed serving: the shard-fleet coordinator
//
// internal/cluster scales the daemon out across the shard pipeline.
// A worker (repairctl worker) maps exactly one shard .cqs and answers
// /v1/partial with a digest-stamped CQSP-equivalent partial; a
// coordinator (repairctl coordinate) owns the CQSM manifest and the
// ops tail, prices every probe once with ExplainPlan (the admission
// ladder is cluster-aware: the fleet critical path — the max over
// workers of their components' summed planned cost — is what is
// compared against the exact budget), and fans the partition query out
// concurrently with core.Stop cancellation propagated on client
// disconnect.
//
// The distributed path is bit-exact or loudly refused, never
// approximately merged:
//
//   - Every returned partial carries the shard digest, manifest CRC,
//     epoch and applied-ops version; the coordinator verifies all four
//     against its manifest and its per-worker ack state before
//     CombinePartials. A stale or foreign partial is a structured 502,
//     never a miscount.
//   - Deltas are classified by ShardPlan.ShardOf and streamed only to
//     the affected shards (shared blocks broadcast); the coordinator
//     tracks the physical placement of every block and, before each
//     fan-out, revalidates that the *fresh* factorization still
//     respects it — each fresh component entirely on one worker, every
//     shared block on all. If deltas have moved the factorization off
//     the placement, the coordinator counts locally (still exact)
//     until the next re-shard.
//   - On journal compaction the coordinator re-shards, distributes
//     fresh shard snapshots, and swings the manifest atomically: the
//     epoch bumps, in-flight probes drain against the old epoch, and a
//     worker that missed the swing is healed by a reload rather than
//     trusted.
//
// Worker failures degrade availability, not integrity: slow shards are
// retried with bounded backoff, and if a worker stays down the
// coordinator falls back to single-node local counting over its own
// snapshot.
//
// # Serve-path performance: the shared probe cache
//
// Both daemons put a bounded, concurrency-safe probe cache
// (internal/server.ProbeCache) in front of the counting substrate, so
// the hot path of a serving workload — the same queries probed again
// and again between deltas — stops re-paying per-probe fixed costs
// (query compile, admission pricing, big-int rendering) that dwarf the
// memoized count itself. Three layers share one entry per canonical
// query text:
//
//   - The compiled Counter is keyed by query and compaction epoch.
//     Compaction swaps the snapshot mapping, so an entry built at an
//     old epoch is rebuilt, never reused, when the epoch has moved.
//   - The priced Admission is memoized per (epoch, version): the
//     ladder's verdict cannot go stale because any delta moves the
//     version and any compaction moves the epoch, and both are frozen
//     for the duration of a probe by the server's reader lock.
//   - Completed exact, decide and total results — including their
//     rendered digit strings — are memoized under the same
//     (epoch, version) stamp, making a stale serve structurally
//     impossible rather than merely unlikely: the stamp is the key,
//     so an outdated result is unreachable, not just invalidated.
//
// Concurrent identical probes are collapsed by a per-entry lock
// acquired with context cancellation (hand-rolled singleflight): the
// first probe computes and stores, waiters acquire after it and hit
// the memo. Distinct queries proceed in parallel; a bounded LRU sweep
// keeps the entry table at its configured size (repairctl
// -cache-entries). /v1/stats exposes hit/miss/evict counters.
//
// The coordinator reuses the same cache for its local rungs and adds
// two fleet-level layers: merged fan-out results memoized per cut
// (epoch, version), and per-worker partials remembered alongside.
// Caching must not mask worker death, so fan-outs always contact every
// worker — a probe sends the remembered (epoch, applied) stamp as
// ?have=, the worker answers 204 No Content when its shard is
// unchanged (skipping the recount and the wire transfer), and the
// coordinator substitutes the memoized partial, which still passes the
// full digest/epoch/applied verification ladder before any merge. The
// merged-result memo is consulted only after that contact phase, so
// fleet-health discovery behaves identically with and without the
// cache. cmd/cqabench gates the payoff: a hot repeated probe must run
// ≥ 10x faster against a cache-enabled daemon than with the cache
// disabled (the ProbeCache gate).
//
// # Knowledge compilation: per-component d-DNNF circuits
//
// The planner's per-component engine menu has a fourth entry,
// EngineCompile (internal/repairs/compile.go): instead of re-walking a
// component's choice space on every count, the component's non-entailment
// predicate ¬Q_c is compiled once into a smooth deterministic
// decomposable circuit over its block-choice variables — exhaustive
// decision nodes over one block's choices, AND nodes where the remaining
// boxes split into independent groups — and every count thereafter is one
// subtraction-free bottom-up pass over the circuit. Decision nodes
// collapse all box-unconstrained choices of a block into one shared
// residual child weighted by the block's residual size at evaluation
// time, so the circuit's shape depends only on the box tables, not on
// block sizes: a delta that merely grows or shrinks blocks re-counts the
// cached circuit (keyed by a size-free structural fingerprint) in
// O(|circuit|), and a component whose choice space is astronomical but
// whose interaction structure is shallow compiles into a tiny circuit
// where both the Gray walk and IE are infeasible. The planner prices a
// cached circuit at its node count and a cold compile at
// min(gray, node budget) — the compiler aborts past its node budget, so
// the attempt is genuinely capped — and adopts cold compilation under
// EngineAuto only once the instance has observed memo reuse (the
// workload demonstrably recounts, which is what amortizes compilation).
//
// The same circuits answer weighted questions: CountWeighted and
// ProbabilityOf evaluate them under per-fact weights in outward-rounded
// float64 interval arithmetic (the returned Interval is guaranteed to
// bracket the exact value), turning the exact counter into a disjoint-
// independent probabilistic-database engine — a uniform weight vector
// recovers the exact count and the relative frequency, and internal/probdb
// pins the semantics with exact rational world enumeration. The serving
// daemon exposes this as /v1/prob with per-fact annotations loaded from a
// workload-format file (`repairctl serve -probs`).
//
// Structural fingerprints round the subsystem out: CountFingerprint
// digests everything that determines the exact count (the space split and
// the per-component structures), letting the probe cache serve one
// query's count to a structurally identical other; PlanFingerprint
// digests the planner report, letting the admission layer carry a priced
// exact admission across instance versions whose deltas did not move the
// plan.
package repaircount

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"math/rand/v2"
	"path/filepath"

	"repaircount/internal/core"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/store"
)

// Re-exported substrate types; see the internal packages for full API.
type (
	// Database is a finite set of facts.
	Database = relational.Database
	// KeySet is a set of primary keys.
	KeySet = relational.KeySet
	// Fact is a predicate applied to constants.
	Fact = relational.Fact
	// Const is a database constant.
	Const = relational.Const
	// Formula is a first-order query.
	Formula = query.Formula
	// Estimate is the outcome of a randomized approximation.
	Estimate = core.Estimate
	// Block is one conflict block of the canonical sequence ≺(D,Σ).
	Block = relational.Block
)

// NewFact builds a fact.
func NewFact(pred string, args ...Const) Fact { return relational.NewFact(pred, args...) }

// NewDatabase builds a database from facts.
func NewDatabase(facts ...Fact) (*Database, error) { return relational.NewDatabase(facts...) }

// Keys builds a key set from predicate → key-width pairs (key(R) =
// {1,...,width}).
func Keys(pairs map[string]int) *KeySet { return relational.Keys(pairs) }

// ParseInstance reads a "key R m" + facts instance from r.
func ParseInstance(r io.Reader) (*Database, *KeySet, error) { return relational.ParseInstance(r) }

// ParseInstanceString is ParseInstance over a string.
func ParseInstanceString(s string) (*Database, *KeySet, error) {
	return relational.ParseInstanceString(s)
}

// ParseQuery parses a first-order query in the surface syntax, e.g.
// "exists x . (R(x, 'a') | S(x))". Bare identifiers are variables; quoted
// strings and numbers are constants.
func ParseQuery(src string) (Formula, error) { return query.Parse(src) }

// Counter answers repair-counting questions for one (D, Σ, Q) instance.
type Counter struct {
	inst *repairs.Instance
}

// NewCounter validates and prepares an instance. Q must be Boolean; use
// Bind to substitute a tuple into a query with free variables.
func NewCounter(db *Database, keys *KeySet, q Formula) (*Counter, error) {
	inst, err := repairs.NewInstance(db, keys, q)
	if err != nil {
		return nil, err
	}
	return &Counter{inst: inst}, nil
}

// Bind substitutes constants for free variables of a query, in the sorted
// order of the free variable names, turning Q(x̄) plus a tuple t̄ into a
// Boolean query — the reduction the paper applies to non-Boolean queries.
func Bind(q Formula, tuple ...Const) (Formula, error) {
	free := query.FreeVars(q)
	if len(free) != len(tuple) {
		return nil, fmt.Errorf("repaircount: query has %d free variables %v, got %d constants", len(free), free, len(tuple))
	}
	binding := make(map[query.Var]Const, len(free))
	for i, v := range free {
		binding[v] = tuple[i]
	}
	return query.Substitute(q, binding), nil
}

// Total returns |rep(D,Σ)| = ∏ |B_i|.
func (c *Counter) Total() *big.Int { return c.inst.TotalRepairs() }

// EngineKind identifies one exact-counting engine; see the repairs package
// for the full set. Count reports the engine that decided a count, and
// CountWith / ExplainPlan select or explain one.
type EngineKind = repairs.EngineKind

// The exact-counting engines.
const (
	// EngineAuto lets the planner arbitrate (the Count default).
	EngineAuto = repairs.EngineAuto
	// EngineSafePlan is the polynomial safe-plan counter.
	EngineSafePlan = repairs.EngineSafePlan
	// EngineLambda1 is the Λ[1] closed form for keywidth ≤ 1.
	EngineLambda1 = repairs.EngineLambda1
	// EngineFactorized is the planned factorized engine (per-component
	// selection between the Gray walk and component-local IE).
	EngineFactorized = repairs.EngineFactorized
	// EngineGray forces the Gray-delta walk on every component.
	EngineGray = repairs.EngineGray
	// EngineMasked is the masked-matcher walk (reported per component).
	EngineMasked = repairs.EngineMasked
	// EngineCompIE forces component-local inclusion–exclusion.
	EngineCompIE = repairs.EngineCompIE
	// EngineCompile forces the knowledge-compilation engine: each
	// component compiled into a cached d-DNNF circuit, counted in one
	// bottom-up pass.
	EngineCompile = repairs.EngineCompile
	// EngineIE is whole-instance inclusion–exclusion over certificate boxes.
	EngineIE = repairs.EngineIE
	// EngineEnum is plain enumeration of the relevant choice space.
	EngineEnum = repairs.EngineEnum
	// EngineEnumFO is exhaustive FO enumeration (non-∃FO⁺ queries).
	EngineEnumFO = repairs.EngineEnumFO
)

// Plan is the exact-counting planner's report: the overall engine and the
// per-component engine assignment with costs.
type Plan = repairs.Plan

// ComponentPlan is one component's entry in a Plan.
type ComponentPlan = repairs.ComponentPlan

// ParseEngine maps an engine name ("auto", "factorized", "gray", "ie",
// "compile", "enum") to its kind; the error lists the valid names.
func ParseEngine(name string) (EngineKind, error) { return repairs.ParseEngine(name) }

// Count computes #CQA(Q,Σ)(D) exactly with the planner-selected engine and
// reports which one decided it (EngineSafePlan, EngineLambda1,
// EngineFactorized, EngineIE, EngineEnum or EngineEnumFO).
func (c *Counter) Count() (*big.Int, EngineKind, error) { return c.inst.CountExact() }

// CountWorkers is Count with an explicit worker count threaded through
// every engine that parallelizes. workers ≤ 0 selects GOMAXPROCS; the
// count is identical for every worker count.
func (c *Counter) CountWorkers(workers int) (*big.Int, EngineKind, error) {
	return c.inst.CountExactWorkers(workers)
}

// ErrBudget is returned when an exact engine's enumeration budget is
// exceeded; callers can degrade to Approximate or refuse the probe.
var ErrBudget = repairs.ErrBudget

// ErrStopped is returned by the Ctx entry points' internals when a count
// is canceled mid-enumeration; CountCtx and ApproximateParallelCtx
// translate it to the context's own error.
var ErrStopped = core.ErrStopped

// stopForCtx bridges a context to the cooperative stop flag the counting
// kernels poll. The returned release must be called when the count
// finishes to free the watcher goroutine.
func stopForCtx(ctx context.Context) (*core.Stop, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	stop := &core.Stop{}
	finished := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Trigger()
		case <-finished:
		}
	}()
	return stop, func() { close(finished) }
}

// CountCtx is CountWorkers with cooperative cancellation: when ctx is
// canceled (deadline, client disconnect), the enumeration kernels observe
// the stop flag within a bounded number of states and the call returns
// ctx.Err(). The count, when it completes, is identical to Count.
func (c *Counter) CountCtx(ctx context.Context, workers int) (*big.Int, EngineKind, error) {
	stop, release := stopForCtx(ctx)
	defer release()
	n, engine, err := c.inst.CountExactStop(workers, stop)
	if err == core.ErrStopped {
		return nil, engine, ctx.Err()
	}
	return n, engine, err
}

// CountWith computes #CQA(Q,Σ)(D) exactly with a pinned engine:
// EngineFactorized (planner-selected per-component engines), EngineGray
// (every component forced onto the Gray-delta walk), EngineCompIE (every
// component forced onto component-local inclusion–exclusion),
// EngineCompile (every component compiled into a cached d-DNNF circuit),
// EngineIE (whole-instance inclusion–exclusion) or EngineEnum (plain
// enumeration). EngineAuto is Count without the engine report.
func (c *Counter) CountWith(engine EngineKind) (*big.Int, error) {
	return c.CountWithWorkers(engine, 0)
}

// CountWithWorkers is CountWith with one worker knob threaded uniformly
// through every pinned engine's executor (the planned factorized runner,
// the forced Gray/IE assignments, parallel enumeration). workers ≤ 0
// selects GOMAXPROCS everywhere; engines without a parallel path
// (whole-instance IE, FO enumeration) ignore it. The count never depends
// on the worker count.
func (c *Counter) CountWithWorkers(engine EngineKind, workers int) (*big.Int, error) {
	switch engine {
	case EngineAuto:
		n, _, err := c.inst.CountExactWorkers(workers)
		return n, err
	case EngineFactorized:
		return c.inst.CountFactorizedParallel(0, workers)
	case EngineGray:
		return c.inst.CountGray(0, workers)
	case EngineCompIE:
		return c.inst.CountCompIE(0, workers)
	case EngineCompile:
		return c.inst.CountCompile(0, workers)
	case EngineIE:
		return c.inst.CountIE(0)
	case EngineEnum:
		if c.inst.IsEP {
			return c.inst.CountEnumUCQParallel(0, workers)
		}
		return c.inst.CountEnumFO(0)
	case EngineEnumFO:
		return c.inst.CountEnumFO(0)
	}
	return nil, fmt.Errorf("repaircount: engine %s cannot be pinned (want EngineAuto, EngineFactorized, EngineGray, EngineCompIE, EngineCompile, EngineIE, EngineEnum or EngineEnumFO)", engine)
}

// ExplainPlan reports how the exact engines would answer without running
// the enumeration: the overall algorithm and, for the factorized engine,
// every component's block and box counts, both engine costs, the chosen
// engine and whether its count is already memoized (the polynomial
// closed-form engines may execute while deciding applicability).
// EngineAuto explains the planner's own choice (what Count does);
// EngineGray / EngineCompIE explain a forced assignment.
func (c *Counter) ExplainPlan(engine EngineKind) (*Plan, error) {
	return c.inst.ExplainPlan(engine)
}

// CountFactorized computes #CQA(Q,Σ)(D) exactly with the planned
// factorized engine: the relevant conflict blocks are partitioned into
// connected components of the query-interaction graph, the planner assigns
// each component the cheaper of the Gray-delta walk (delta-maintained
// match state over the component's 2^{n_c} choices) and component-local
// inclusion–exclusion over the component's boxes, and the per-component
// non-entailment counts multiply. Work is Σ_c min(2^{n_c}, IE_c) instead
// of Π|B_i|, with heterogeneous component jobs drained by a work-stealing
// worker pool. Existential positive queries only; the count is
// bit-identical to the enumeration path.
func (c *Counter) CountFactorized() (*big.Int, error) {
	return c.inst.CountFactorizedParallel(0, 0)
}

// CountEnum computes #CQA(Q,Σ)(D) exactly by plain enumeration of the
// repair space (the ground-truth path the factorized engine is measured
// against): one fresh evaluation per enumerated repair.
func (c *Counter) CountEnum() (*big.Int, error) {
	if c.inst.IsEP {
		return c.inst.CountEnumUCQ(0)
	}
	return c.inst.CountEnumFO(0)
}

// Interval is a closed float64 interval [Lo, Hi] guaranteed to contain an
// exact real value; the weighted counters return their answers as
// outward-rounded intervals (see internal/core).
type Interval = core.Interval

// FactWeights renders a per-fact annotation map — canonical fact text
// (Fact.Canonical / Fact.String) to weight — as the ordinal-indexed weight
// vector CountWeighted and ProbabilityOf consume. Unannotated facts weigh
// 1 (so an empty map is the uniform vector), and annotations naming facts
// absent from the instance are ignored, which lets one annotation file
// outlive deltas. Weight validity (finite, ≥ 0) is checked by the
// consumers, not here.
func (c *Counter) FactWeights(ann map[string]float64) []float64 {
	w := make([]float64, c.inst.Idx.NumFacts())
	for i := range w {
		w[i] = 1
	}
	if len(ann) == 0 {
		return w
	}
	for _, f := range c.inst.DB.Facts() {
		if x, ok := ann[f.Canonical()]; ok {
			if ord, ok := c.inst.Idx.OrdinalOf(f); ok {
				w[ord] = x
			}
		}
	}
	return w
}

// CountWeighted computes the weighted model count of the entailing
// repairs — Σ over repairs r entailing Q of Π_{fact ∈ r} w[fact] — by
// evaluating each component's cached d-DNNF circuit under the weights in
// outward-rounded interval arithmetic: the returned Interval brackets the
// exact value. The weight vector is indexed by fact ordinal (build it with
// FactWeights); uniform weight 1 recovers the exact count. Existential
// positive queries with materialized boxes only.
func (c *Counter) CountWeighted(w []float64) (Interval, error) { return c.inst.CountWeighted(w) }

// ProbabilityOf computes the probability that a random repair entails the
// query when every conflict block independently picks one of its facts
// with odds proportional to the per-fact weights — the disjoint-
// independent probabilistic-database semantics (internal/probdb pins it
// with exact rationals). The interval brackets the exact probability; a
// uniform vector recovers the relative frequency. Circuits are cached
// across calls and deltas, so repeated probes are circuit-linear.
func (c *Counter) ProbabilityOf(w []float64) (Interval, error) { return c.inst.ProbabilityOf(w) }

// CountFingerprint digests everything that determines the exact count:
// equal fingerprints (even across different query texts) mean equal
// counts, so a cache may serve one query's result to the other. ok is
// false when no sound structural fingerprint exists (non-∃FO⁺ queries,
// masked factorizations) — fall back to keying by query text.
func (c *Counter) CountFingerprint() (fp string, ok bool) { return c.inst.CountFingerprint() }

// PlanFingerprint digests the EngineAuto planner report: equal
// fingerprints across instance versions mean the plan did not move, so an
// admission priced purely from the plan (the exact rung) may be carried
// across the version bump. Non-exact admissions must be re-priced (the
// FPRAS sample bound is not plan-determined). ok is false for non-∃FO⁺
// queries.
func (c *Counter) PlanFingerprint() (fp string, ok bool) { return c.inst.PlanFingerprint() }

// Decide answers #CQA>0: does some repair entail Q?
func (c *Counter) Decide() bool { return c.inst.HasRepairEntailing() }

// RelativeFrequency returns #CQA / |rep| as an exact rational.
func (c *Counter) RelativeFrequency() (*big.Rat, error) { return c.inst.RelativeFrequency() }

// Approximate runs the paper's FPRAS (Theorem 6.2):
// Pr(|estimate − #CQA| ≤ ε·#CQA) ≥ 1−δ. Only existential positive
// queries are supported (Theorem 6.1: no FPRAS for FO unless RP = NP).
// The seed makes runs reproducible.
func (c *Counter) Approximate(eps, delta float64, seed uint64) (Estimate, error) {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	return c.inst.Apx(eps, delta, rng)
}

// ApproximateWithSamples runs the Algorithm 3 estimator with an explicit
// sample budget (no (ε,δ) guarantee unless the budget meets the paper's
// bound).
func (c *Counter) ApproximateWithSamples(samples int, seed uint64) (Estimate, error) {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	return c.inst.ApxWithSamples(samples, rng)
}

// ApproximateParallel runs the FPRAS with the sampling loop sharded across
// worker goroutines (workers ≤ 0 selects GOMAXPROCS). The sample budget is
// split into a fixed number of shards, each with its own PCG stream seeded
// deterministically from the user seed, so for a fixed seed the estimate
// is identical across runs and worker counts.
func (c *Counter) ApproximateParallel(eps, delta float64, workers int, seed uint64) (Estimate, error) {
	return c.inst.ApxParallel(eps, delta, workers, seed)
}

// ApproximateParallelCtx is ApproximateParallel with cooperative
// cancellation: a canceled ctx stops the sampling loops within a bounded
// number of draws and the call returns ctx.Err().
func (c *Counter) ApproximateParallelCtx(ctx context.Context, eps, delta float64, workers int, seed uint64) (Estimate, error) {
	stop, release := stopForCtx(ctx)
	defer release()
	est, err := c.inst.ApxParallelStop(eps, delta, workers, seed, stop)
	if err == core.ErrStopped {
		return Estimate{}, ctx.Err()
	}
	return est, err
}

// ApproxSampleBound reports the Theorem 6.2 sample count the FPRAS would
// run at the given accuracy, without drawing a sample — how a serving
// layer prices an approximate probe before admitting it. It fails for
// queries without an FPRAS (non-∃FO⁺, or an unbounded compactor).
func (c *Counter) ApproxSampleBound(eps, delta float64) (*big.Int, error) {
	return c.inst.ApxSampleBound(eps, delta)
}

// Keywidth returns kw(Q,Σ), the paper's covering function: #CQA(Q,Σ) is
// Λ[kw]-complete (Theorem 5.1).
func (c *Counter) Keywidth() int { return c.inst.Keywidth() }

// Fragment names the smallest standard query class containing Q (CQ, UCQ,
// ∃FO+, FO).
func (c *Counter) Fragment() string { return query.Classify(c.inst.Q).String() }

// Instance exposes the underlying repairs.Instance for advanced use (the
// compactor, certificate boxes, Karp–Luby sampler, safe-plan internals).
func (c *Counter) Instance() *repairs.Instance { return c.inst }

// Delta is one instance mutation: the insertion or deletion of a fact.
type Delta = repairs.Delta

// Insert builds an insertion delta for Apply.
func Insert(f Fact) Delta { return repairs.Insert(f) }

// Delete builds a deletion delta for Apply.
func Delete(f Fact) Delta { return repairs.Delete(f) }

// Apply mutates the counter's instance in place, maintaining the conflict
// blocks, the evaluation index and the factorization state incrementally,
// and returns how many deltas changed the instance (duplicate inserts and
// deletes of absent facts are no-ops). Counting methods remain valid
// between deltas; a recount re-enumerates only the components the deltas
// touched. Counters sharing a snapshot substrate observe each other's
// deltas on their next count.
func (c *Counter) Apply(deltas ...Delta) (int, error) { return c.inst.Apply(deltas...) }

// Version returns the monotonically increasing version of the counter's
// instance (the number of successful mutations since construction).
func (c *Counter) Version() uint64 { return c.inst.Version() }

// Snapshot is a loaded .cqs instance snapshot: one database plus key set
// with its derived counting structures reconstructed from the snapshot's
// mapped arenas instead of recomputed. Many counters can be built against
// one snapshot; they share the block sequence and evaluation index. The
// snapshot and everything derived from it is read-only, and none of it may
// be used after Close.
type Snapshot struct {
	s    *store.Snapshot
	db   *Database
	keys *KeySet
}

// OpenSnapshot maps and validates the snapshot file at path (see
// WriteSnapshot / repairctl build for producing one). The load parses no
// text: fact arenas, symbol tables, block boundaries and posting lists are
// aliased from the mapping.
func OpenSnapshot(path string) (*Snapshot, error) {
	s, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	return newSnapshot(s)
}

// DecodeSnapshot is OpenSnapshot over in-memory bytes (for example a
// snapshot received over a network or read from stdin). The buffer is
// retained by the returned Snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	s, err := store.Decode(data)
	if err != nil {
		return nil, err
	}
	return newSnapshot(s)
}

func newSnapshot(s *store.Snapshot) (*Snapshot, error) {
	db, err := s.Database()
	if err != nil {
		s.Close()
		return nil, err
	}
	keys, err := s.Keys()
	if err != nil {
		s.Close()
		return nil, err
	}
	return &Snapshot{s: s, db: db, keys: keys}, nil
}

// Database returns the snapshot's database.
func (s *Snapshot) Database() *Database { return s.db }

// Keys returns the snapshot's key set Σ.
func (s *Snapshot) Keys() *KeySet { return s.keys }

// Blocks returns the snapshot's preloaded canonical conflict-block
// sequence — identical to relational.Blocks over the parsed instance, at
// no recomputation cost. Callers must not mutate the result.
func (s *Snapshot) Blocks() []Block {
	blocks, err := s.s.Blocks()
	if err != nil {
		// Materialization already succeeded in newSnapshot; the memoized
		// error cannot reappear.
		panic(err)
	}
	return blocks
}

// TotalRepairs returns |rep(D,Σ)| = ∏|B_i| from the preloaded blocks.
func (s *Snapshot) TotalRepairs() *big.Int {
	return relational.NumRepairsOfBlocks(s.Blocks())
}

// RankAnswers scores every candidate answer tuple of a non-Boolean query
// by its relative frequency (see the package-level RankAnswers), reusing
// the snapshot's preloaded block sequence and index across all tuples.
func (s *Snapshot) RankAnswers(q Formula) ([]RankedAnswer, error) {
	idx, err := s.s.Index()
	if err != nil {
		return nil, err
	}
	return rankAnswers(s.db, s.keys, q, s.Blocks(), idx)
}

// Counter prepares a counter for a Boolean query over the snapshot,
// sharing the snapshot's live substrate (preloaded block sequence and
// index): every counter over one snapshot sees deltas applied through the
// snapshot or through any sibling counter.
func (s *Snapshot) Counter(q Formula) (*Counter, error) {
	live, err := s.s.Live()
	if err != nil {
		return nil, err
	}
	inst, err := repairs.NewLiveInstance(live, q)
	if err != nil {
		return nil, err
	}
	return &Counter{inst: inst}, nil
}

// Apply mutates the loaded snapshot's instance in memory (the file is not
// touched; use AppendJournal to persist deltas). It returns how many
// deltas changed the instance. Counters built from the snapshot observe
// the mutations on their next count.
func (s *Snapshot) Apply(deltas ...Delta) (int, error) {
	live, err := s.s.Live()
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, d := range deltas {
		changed, err := live.Apply(d.Del, d.Fact)
		if changed {
			applied++
		}
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// Version returns the snapshot instance's monotonically increasing
// version: the number of journal ops replayed at load plus the mutations
// applied since.
func (s *Snapshot) Version() uint64 {
	live, err := s.s.Live()
	if err != nil {
		// Materialization already succeeded in newSnapshot; the memoized
		// error cannot reappear.
		panic(err)
	}
	return live.Version()
}

// Close releases the snapshot's file mapping. Structures obtained from the
// snapshot (database, counters) must not be used afterwards.
func (s *Snapshot) Close() error { return s.s.Close() }

// WriteSnapshot serializes (D, Σ) as a .cqs snapshot with all precomputed
// sections; the output loads with OpenSnapshot.
func WriteSnapshot(w io.Writer, db *Database, keys *KeySet) error {
	return store.Write(w, db, keys, store.DefaultOptions)
}

// Snapshot serializes the counter's instance as a .cqs snapshot, so later
// runs (or other machines) can OpenSnapshot it and count without parsing
// or re-indexing.
func (c *Counter) Snapshot(w io.Writer) error {
	return store.Write(w, c.inst.DB, c.inst.Keys, store.DefaultOptions)
}

// AppendJournal appends the deltas as one self-contained, checksummed
// journal block to the .cqs snapshot file at path, without rewriting the
// sealed base. The deltas are validated against the loaded snapshot
// first, so a delta the instance cannot absorb (e.g. an arity clash)
// fails the append and leaves the file loadable. OpenSnapshot replays the
// journal on load, so the file then describes the mutated instance.
func AppendJournal(path string, deltas ...Delta) error {
	ops := make([]store.JournalOp, len(deltas))
	for i, d := range deltas {
		ops[i] = store.JournalOp{Del: d.Del, Fact: d.Fact}
	}
	return store.AppendJournal(path, ops)
}

// CompactSnapshot reseals the snapshot at src — base plus any appended
// journal — as a clean, journal-free snapshot at dst with all precomputed
// sections and identical counts. The write is atomic (temp file plus
// rename in the destination directory), so src == dst compacts in place
// safely.
func CompactSnapshot(src, dst string) error { return store.CompactFile(src, dst) }

// RecoverSnapshot repairs a snapshot file whose last journal append was
// interrupted by a crash: a torn trailing journal block is truncated away
// (with an fsync), leaving the file bit-identical to its last committed
// state. It returns the number of torn bytes dropped — 0 for a clean
// file. Damage a torn append cannot explain (a corrupt base, a damaged
// committed block) is an error: recovery never invents a state.
func RecoverSnapshot(path string) (dropped int64, err error) {
	return store.RecoverFile(path)
}

// ShardPlan is a cost-balanced partition of an instance's query-graph
// components into K shards; see Counter.PlanShards.
type ShardPlan = repairs.ShardPlan

// Partial is one shard's counting contribution: its Inner choice space and
// NonEnt non-entailing total, merged as (Π Inner − Π NonEnt) × Outer.
type Partial = repairs.Partial

// Manifest is the CQSM record binding a shard set: the partition's query,
// per-shard snapshot digests, and the excluded-block factor.
type Manifest = store.Manifest

// PlanShards partitions the counter's components into k groups by greedy
// bin-packing on planned engine cost (`repairctl shard -explain` renders
// the resulting per-shard cost table). k may exceed the component count;
// surplus shards are empty and merge neutrally.
func (c *Counter) PlanShards(k int) (*ShardPlan, error) { return c.inst.PlanShards(k) }

// CountSharded counts exactly by splitting the instance into k
// cost-balanced shards, running one independent planned counter per shard
// on a worker pool (workers ≤ 0 selects GOMAXPROCS), and merging the
// partials with exact big-int arithmetic. The result is bit-identical to
// Count for every k — sharding is a throughput lever, never an
// approximation.
func (c *Counter) CountSharded(k, workers int) (*big.Int, error) {
	return c.inst.CountSharded(k, workers)
}

// CountShardedCtx is CountSharded with cooperative cancellation threaded
// through every per-shard job: when ctx is canceled the fleet's workers
// observe the stop flag within a bounded number of states and the call
// returns ctx.Err(). The count, when it completes, is identical to
// CountSharded.
func (c *Counter) CountShardedCtx(ctx context.Context, k, workers int) (*big.Int, error) {
	stop, release := stopForCtx(ctx)
	defer release()
	n, err := c.inst.CountShardedStop(k, workers, stop)
	if err == core.ErrStopped {
		return nil, ctx.Err()
	}
	return n, err
}

// CountPartial computes this instance's shard partial — Inner = Π|B_i|
// over its blocks and NonEnt = its repairs not entailing the query — with
// the planned factorized engine (workers ≤ 0 selects GOMAXPROCS). It is
// the counting half of the multi-process pipeline: run it on a shard
// snapshot, serialize the result, and MergePartialFiles recombines the
// set.
func (c *Counter) CountPartial(workers int) (*Partial, error) {
	return c.inst.CountNonEntailment(0, workers)
}

// CountPartialCtx is CountPartial with cooperative cancellation: a shard
// worker serving partials over HTTP threads the request context here so a
// canceled or abandoned probe frees the counting kernels within a bounded
// number of states. Returns ctx.Err() when canceled.
func (c *Counter) CountPartialCtx(ctx context.Context, workers int) (*Partial, error) {
	stop, release := stopForCtx(ctx)
	defer release()
	p, err := c.inst.CountNonEntailmentStop(0, workers, stop)
	if err == core.ErrStopped {
		return nil, ctx.Err()
	}
	return p, err
}

// ShardSet describes shard snapshots written by WriteShards: the manifest
// (also written to ManifestPath) with its digest, and the shard snapshot
// paths in shard order.
type ShardSet struct {
	Manifest     *Manifest
	ManifestCRC  uint64
	ManifestPath string
	Paths        []string
}

// WriteShards slices the counter's instance under plan into one
// self-contained .cqs snapshot per shard in dir (shard-000.cqs, …) plus a
// CQSM manifest (manifest.cqsm) binding the set. baseCRC identifies the
// parent snapshot in the manifest (0 for instances without a snapshot
// form). Each shard holds its exclusive conflicting blocks plus every
// shared single-fact relevant block and the full key set, so it loads and
// counts like any snapshot.
func (c *Counter) WriteShards(dir string, plan *ShardPlan, baseCRC uint64) (*ShardSet, error) {
	paths := make([]string, plan.K)
	for s := range paths {
		paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%03d.cqs", s))
	}
	digests, err := store.WriteShardFiles(c.inst.Keys, c.inst.Blocks, plan.ShardOf, paths)
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		BaseCRC: baseCRC,
		Query:   fmt.Sprintf("%v", c.inst.Q),
		Outer:   plan.Outer,
		Shards:  make([]store.ManifestShard, plan.K),
	}
	for s := range m.Shards {
		m.Shards[s] = store.ManifestShard{
			CRC:    digests[s],
			Cost:   plan.Cost[s],
			Blocks: plan.Blocks[s],
		}
	}
	for _, sh := range plan.CompShard {
		m.Shards[sh].Components++
	}
	mpath := filepath.Join(dir, "manifest.cqsm")
	crc, err := store.WriteManifestFile(mpath, m)
	if err != nil {
		return nil, err
	}
	return &ShardSet{Manifest: m, ManifestCRC: crc, ManifestPath: mpath, Paths: paths}, nil
}

// Shard slices the sealed snapshot into k shard snapshots plus a manifest
// in dir, partitioned for the Boolean query q (see Counter.WriteShards).
// The snapshot must be journal-free — shard digests identify sealed bytes,
// so a journaled snapshot must be compacted first.
func (s *Snapshot) Shard(q Formula, k int, dir string) (*ShardSet, error) {
	if n := s.s.NumJournalOps(); n > 0 {
		return nil, fmt.Errorf("repaircount: snapshot carries %d journal ops; compact it before sharding", n)
	}
	c, err := s.Counter(q)
	if err != nil {
		return nil, err
	}
	plan, err := c.PlanShards(k)
	if err != nil {
		return nil, err
	}
	return c.WriteShards(dir, plan, s.Digest())
}

// Digest returns the snapshot's sealed-base digest — the trailer CRC that
// shard manifests use to identify snapshots. Appended journal ops do not
// change it.
func (s *Snapshot) Digest() uint64 { return s.s.BaseCRC() }

// NumJournalOps returns how many delta-journal ops the snapshot file
// carried at load. A snapshot with journal ops no longer equals its sealed
// base, so sharding and shard counting refuse it until compacted.
func (s *Snapshot) NumJournalOps() int { return s.s.NumJournalOps() }

// JournalBytes returns the size of the journal region appended after the
// snapshot's sealed base — the growth a compaction would reclaim. The
// serving daemon compacts when this crosses its threshold.
func (s *Snapshot) JournalBytes() int64 { return s.s.JournalBytes() }

// MergePartialFiles reads a CQSM manifest and a complete set of CQSP
// partial files and recombines them into the exact global count,
// verifying that every partial was produced under this manifest and
// counted the recorded shard snapshot. Any stale, mixed, duplicated or
// missing partial is an error, never a miscount.
func MergePartialFiles(manifestPath string, partialPaths ...string) (*big.Int, error) {
	m, crc, err := store.ReadManifestFile(manifestPath)
	if err != nil {
		return nil, err
	}
	parts := make([]*store.PartialFile, len(partialPaths))
	for i, p := range partialPaths {
		if parts[i], err = store.ReadPartialFile(p); err != nil {
			return nil, err
		}
	}
	return store.MergePartials(m, crc, parts)
}

package repaircount_test

import (
	"fmt"
	"log"

	"repaircount"
)

// The database of the paper's Example 1.1: employee 1 has two candidate
// departments, employee 2 two candidate names — four repairs in total.
const instanceText = `
key Employee 1
Employee(1, Bob, HR)
Employee(1, Bob, IT)
Employee(2, Alice, IT)
Employee(2, Tim, IT)
`

func ExampleNewCounter() {
	db, keys, err := repaircount.ParseInstanceString(instanceText)
	if err != nil {
		log.Fatal(err)
	}
	q, err := repaircount.ParseQuery(
		"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	if err != nil {
		log.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	count, _, err := c.Count()
	if err != nil {
		log.Fatal(err)
	}
	freq, err := c.RelativeFrequency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total repairs:", c.Total())
	fmt.Println("entailing Q:  ", count)
	fmt.Println("frequency:    ", freq)
	// Output:
	// total repairs: 4
	// entailing Q:   2
	// frequency:     1/2
}

func ExampleCounter_Decide() {
	db, keys, _ := repaircount.ParseInstanceString(instanceText)
	// No repair can keep both conflicting Employee(1, ...) tuples.
	q, _ := repaircount.ParseQuery(
		"exists n, m . (Employee(1, n, 'HR') & Employee(1, m, 'IT'))")
	c, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Decide())
	// Output:
	// false
}

func ExampleRankAnswers() {
	db, keys, _ := repaircount.ParseInstanceString(instanceText)
	q, _ := repaircount.ParseQuery("exists i . Employee(i, n, 'IT')")
	ranked, err := repaircount.RankAnswers(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ranked {
		fmt.Printf("%s %s\n", r.Tuple[0], r.Frequency.RatString())
	}
	// Output:
	// Alice 1/2
	// Bob 1/2
	// Tim 1/2
}

func ExampleBind() {
	db, keys, _ := repaircount.ParseInstanceString(instanceText)
	q, _ := repaircount.ParseQuery("exists n . Employee(1, n, d)")
	bound, err := repaircount.Bind(q, "IT")
	if err != nil {
		log.Fatal(err)
	}
	c, _ := repaircount.NewCounter(db, keys, bound)
	count, _, _ := c.Count()
	fmt.Println(count)
	// Output:
	// 2
}

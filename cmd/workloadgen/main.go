// Command workloadgen emits synthetic inconsistent databases in the text
// codec, for use with repairctl and external tooling.
//
// Usage:
//
//	workloadgen -kind employee -n 200 -conflict 0.3 -seed 7 > employees.db
//	workloadgen -kind pairs -n 64 > pairs.db
//	workloadgen -kind random -n 50 -blocksize-max 4 -zipf > random.db
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "employee", "workload kind: employee | pairs | random")
		n        = flag.Int("n", 100, "scale (employees / blocks)")
		conflict = flag.Float64("conflict", 0.3, "fraction of conflicting entities (employee kind)")
		depts    = flag.Int("depts", 4, "number of departments (employee kind)")
		maxSize  = flag.Int("blocksize-max", 3, "maximum block size (random kind)")
		zipf     = flag.Bool("zipf", false, "Zipf block sizes instead of uniform (random kind)")
		values   = flag.Int("values", 5, "value alphabet size (random kind)")
		seed     = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewPCG(*seed, 99))
	var (
		db  *relational.Database
		ks  *relational.KeySet
		err error
	)
	switch *kind {
	case "employee":
		db, ks = workload.Employee(rng, *n, *depts, *conflict)
	case "pairs":
		db, ks = workload.PairsDatabase(*n)
	case "random":
		var dist workload.Dist = workload.Uniform{Lo: 1, Hi: *maxSize}
		if *zipf {
			dist = workload.Zipf{S: 1.5, V: 1, Max: *maxSize}
		}
		db, ks, err = workload.Generate(rng, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: *n, BlockSizes: dist, NumValues: *values},
			{Pred: "S", KeyWidth: 1, Arity: 1, NumBlocks: *n / 2, BlockSizes: dist, NumValues: *values},
		})
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("# workloadgen -kind %s -n %d -seed %d\n", *kind, *n, *seed)
	fmt.Printf("# facts=%d repairs=%s\n", db.Len(), relational.NumRepairs(db, ks))
	if err := relational.WriteInstance(os.Stdout, db, ks); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

// Command workloadgen emits synthetic inconsistent databases in the text
// codec, for use with repairctl and external tooling, plus optional update
// streams (interleaved inserts/deletes) for exercising the incremental
// maintenance paths.
//
// Usage:
//
//	workloadgen -kind employee -n 200 -conflict 0.3 -seed 7 > employees.db
//	workloadgen -kind pairs -n 64 > pairs.db
//	workloadgen -kind random -n 50 -blocksize-max 4 -zipf > random.db
//	workloadgen -kind ie-heavy -n 40 -components 2 -boxes 3 > ieheavy.db
//	workloadgen -kind skewed-components -n 32 -components 8 -skew 1.0 > skew.db
//	workloadgen -kind employee -n 100 -updates 50 -update-conflict 0.6 \
//	    -updates-out stream.ops > employees.db
//	workloadgen -kind probe-stream -components 3 -n 2 \
//	    -probes-out probes.txt > probes.db
//	workloadgen -kind prob-stream -components 4 -n 3 \
//	    -probs-out weights.probs > prob.db
//	workloadgen -kind cluster-stream -components 8 -n 6 -updates 60 \
//	    -updates-out stream.ops > cluster.db
//
// probe-stream emits a base instance plus an admission probe stream for
// the serve daemon (repairctl serve): cheap queries the daemon must answer
// exactly, expensive ones it must degrade to the FPRAS, and pathological
// (non-∃FO⁺) ones it must refuse with a budget error, one
// "expect<TAB>query" line each, under the exact budget stated in the
// file's "# exact-budget:" header. -distinct N replaces the default
// exact probes with N distinct ground atoms, shaping the query
// working-set size (and therefore a serving cache's hit rate)
// deterministically.
//
// prob-stream emits a MultiComponent base instance plus a per-fact
// probability-annotation file ("weight<TAB>Fact" lines, deterministic
// dyadic weights) for the weighted-counting path: feed the instance to
// repairctl build and the annotations to repairctl serve -probs, and the
// daemon's /v1/prob endpoint answers probability probes over the
// annotated instance. The partition query is printed as "# query:".
//
// ie-heavy emits the few-boxes/large-component regime of the exact-counting
// planner (n blocks of size 2 per component, coupled by -boxes ground
// disjuncts), where Gray enumeration blows the budget and component-local
// inclusion–exclusion counts in microseconds; the matching query is printed
// as a "# query:" comment for use with repairctl count -query.
//
// cluster-stream emits the distributed-serving regime: -components
// independent conflicting components of -n size-2 blocks each, whose
// partition query (printed as "# query:") the shard-fleet coordinator
// (repairctl coordinate) can fan out across workers, plus the -updates
// delta stream it re-routes to the affected shards. The corpus is
// conflict-dense on purpose, so a healthy fraction of stream inserts
// land inside existing blocks and exercise the delta-streaming path.
//
// skewed-components emits -components independent components whose block
// counts follow a power law b_i = max(2, ⌊n/(i+1)^skew⌋) — the unbalanced
// regime that exercises the cost-aware shard bin-packer (repairctl shard).
// Each component contributes #¬Q_c = 2, so the repair count has the closed
// form 2^{Σ b_i} − 2^{components}; the query is printed as "# query:".
//
// The update stream is valid against the emitted base instance evolving
// under it (every delete targets a live fact, every insert a fresh one)
// and is written in the op format repairctl apply consumes: one
// "+ Fact" or "- Fact" per line.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

func main() {
	var (
		kind       = flag.String("kind", "employee", "workload kind: employee | pairs | random | ie-heavy | skewed-components | cluster-stream | probe-stream | prob-stream")
		n          = flag.Int("n", 100, "scale (employees / blocks; blocks per component for ie-heavy and cluster-stream; max blocks per component for skewed-components)")
		conflict   = flag.Float64("conflict", 0.3, "fraction of conflicting entities (employee kind)")
		depts      = flag.Int("depts", 4, "number of departments (employee kind)")
		maxSize    = flag.Int("blocksize-max", 3, "maximum block size (random kind)")
		zipf       = flag.Bool("zipf", false, "Zipf block sizes instead of uniform (random kind)")
		values     = flag.Int("values", 5, "value alphabet size (random kind)")
		components = flag.Int("components", 1, "number of independent components (ie-heavy, skewed-components kinds)")
		boxes      = flag.Int("boxes", 3, "homomorphic-image boxes per component (ie-heavy kind)")
		skew       = flag.Float64("skew", 1.0, "power-law exponent of component sizes (skewed-components kind)")
		seed       = flag.Uint64("seed", 7, "random seed")
		updates    = flag.Int("updates", 0, "emit an update stream of this many interleaved inserts/deletes")
		updConf    = flag.Float64("update-conflict", 0.5, "fraction of stream inserts landing in an existing conflict block")
		updStream  = flag.String("updates-out", "", "path for the update stream (required with -updates)")
		probesOut  = flag.String("probes-out", "", "path for the admission probe stream (required with -kind probe-stream)")
		probsOut   = flag.String("probs-out", "", "path for the per-fact probability annotations (required with -kind prob-stream)")
		distinct   = flag.Int("distinct", 0, "probe-stream query working-set size: emit this many distinct exact ground-atom probes (0 = one per component)")
	)
	flag.Parse()
	rng := rand.New(rand.NewPCG(*seed, 99))
	var (
		db          *relational.Database
		ks          *relational.KeySet
		q           query.Formula
		probes      []workload.Probe
		probeBudget int64
		anns        []workload.ProbAnnotation
		err         error
	)
	switch *kind {
	case "employee":
		db, ks = workload.Employee(rng, *n, *depts, *conflict)
	case "pairs":
		db, ks = workload.PairsDatabase(*n)
	case "ie-heavy":
		if *components < 1 || *n < 2 || *boxes < 1 || *boxes >= *n {
			err = fmt.Errorf("ie-heavy needs -components >= 1, -n >= 2 and 1 <= -boxes < -n (have -components %d -n %d -boxes %d)", *components, *n, *boxes)
			break
		}
		db, ks, q = workload.IEHeavy(*components, *n, *boxes)
	case "skewed-components":
		if *components < 1 || *n < 2 || *skew < 0 {
			err = fmt.Errorf("skewed-components needs -components >= 1, -n >= 2 and -skew >= 0 (have -components %d -n %d -skew %g)", *components, *n, *skew)
			break
		}
		db, ks, q = workload.SkewedComponents(*components, *n, *skew)
	case "cluster-stream":
		if *components < 1 || *n < 1 {
			err = fmt.Errorf("cluster-stream needs -components >= 1 and -n >= 1 (have -components %d -n %d)", *components, *n)
			break
		}
		db, ks, q = workload.MultiComponent(*components, *n, 2)
	case "prob-stream":
		if *components < 1 || *n < 1 {
			err = fmt.Errorf("prob-stream needs -components >= 1 and -n >= 1 (have -components %d -n %d)", *components, *n)
			break
		}
		if *probsOut == "" {
			err = fmt.Errorf("-probs-out is required with -kind prob-stream (the annotations cannot share stdout with the instance)")
			break
		}
		db, ks, q = workload.MultiComponent(*components, *n, 2)
		anns = workload.ProbStream(rng, db)
	case "probe-stream":
		if *components < 1 || *n < 2 {
			err = fmt.Errorf("probe-stream needs -components >= 1 and -n >= 2 (have -components %d -n %d)", *components, *n)
			break
		}
		if *probesOut == "" {
			err = fmt.Errorf("-probes-out is required with -kind probe-stream (the probes cannot share stdout with the instance)")
			break
		}
		if *distinct < 0 || *distinct > *components**n*2 {
			err = fmt.Errorf("probe-stream shapes at most -components*-n*2 = %d distinct probes (have -distinct %d)", *components**n*2, *distinct)
			break
		}
		db, ks, probeBudget, probes = workload.ProbeStreamDistinct(*components, *n, *distinct)
	case "random":
		var dist workload.Dist = workload.Uniform{Lo: 1, Hi: *maxSize}
		if *zipf {
			dist = workload.Zipf{S: 1.5, V: 1, Max: *maxSize}
		}
		db, ks, err = workload.Generate(rng, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: *n, BlockSizes: dist, NumValues: *values},
			{Pred: "S", KeyWidth: 1, Arity: 1, NumBlocks: *n / 2, BlockSizes: dist, NumValues: *values},
		})
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# workloadgen -kind %s -n %d -seed %d\n", *kind, *n, *seed)
	fmt.Printf("# facts=%d repairs=%s\n", db.Len(), relational.NumRepairs(db, ks))
	if q != nil {
		// The ie-heavy regime is defined by its query (few boxes over one
		// large component); emit it as a comment for repairctl -query.
		fmt.Printf("# query: %s\n", q)
	}
	if err := relational.WriteInstance(os.Stdout, db, ks); err != nil {
		fatal(err)
	}
	if len(probes) > 0 {
		f, err := os.Create(*probesOut)
		if err != nil {
			fatal(err)
		}
		if err := workload.FormatProbes(f, probeBudget, probes); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "workloadgen: wrote %d probes (exact-budget %d) to %s\n", len(probes), probeBudget, *probesOut)
	}
	if len(anns) > 0 {
		f, err := os.Create(*probsOut)
		if err != nil {
			fatal(err)
		}
		if err := workload.FormatProbAnnotations(f, anns); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "workloadgen: wrote %d fact annotations to %s\n", len(anns), *probsOut)
	}
	if *updates > 0 {
		if *updStream == "" {
			fatal(fmt.Errorf("-updates-out is required with -updates (the stream cannot share stdout with the instance)"))
		}
		ops := workload.UpdateStream(rng, db, ks, *updates, *updConf)
		f, err := os.Create(*updStream)
		if err != nil {
			fatal(err)
		}
		if err := workload.FormatUpdates(f, ops); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "workloadgen: wrote %d ops to %s\n", len(ops), *updStream)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}

package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func writeExampleDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "example.db")
	err := os.WriteFile(path, []byte(`
key Employee 1
Employee(1, Bob, HR)
Employee(1, Bob, IT)
Employee(2, Alice, IT)
Employee(2, Tim, IT)
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

const exampleQuery = "exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))"

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestTotalAndBlocks(t *testing.T) {
	db := writeExampleDB(t)
	if got := strings.TrimSpace(runCmd(t, "total", "-db", db)); got != "4" {
		t.Fatalf("total = %q, want 4", got)
	}
	blocks := runCmd(t, "blocks", "-db", db)
	if !strings.Contains(blocks, "size=2") || !strings.Contains(blocks, "Employee(1,Bob,HR)") {
		t.Fatalf("blocks output wrong:\n%s", blocks)
	}
}

func TestCountDecideFreq(t *testing.T) {
	db := writeExampleDB(t)
	count := runCmd(t, "count", "-db", db, "-query", exampleQuery)
	if !strings.HasPrefix(count, "2\t") || !strings.Contains(count, "keywidth: 2") {
		t.Fatalf("count output wrong: %q", count)
	}
	if got := strings.TrimSpace(runCmd(t, "decide", "-db", db, "-query", exampleQuery)); got != "true" {
		t.Fatalf("decide = %q", got)
	}
	freq := runCmd(t, "freq", "-db", db, "-query", exampleQuery)
	if !strings.HasPrefix(freq, "1/2\t") {
		t.Fatalf("freq output wrong: %q", freq)
	}
}

// The two pinnable exact paths must agree with each other and with auto.
func TestCountExactFlag(t *testing.T) {
	db := writeExampleDB(t)
	factorized := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "factorized")
	if !strings.HasPrefix(factorized, "2\t") || !strings.Contains(factorized, "algorithm: factorized") {
		t.Fatalf("factorized count output wrong: %q", factorized)
	}
	enum := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "enum")
	if !strings.HasPrefix(enum, "2\t") || !strings.Contains(enum, "algorithm: enumeration") {
		t.Fatalf("enum count output wrong: %q", enum)
	}
	gray := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "gray")
	if !strings.HasPrefix(gray, "2\t") || !strings.Contains(gray, "algorithm: gray") {
		t.Fatalf("gray count output wrong: %q", gray)
	}
	ie := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "ie")
	if !strings.HasPrefix(ie, "2\t") || !strings.Contains(ie, "algorithm: inclusion-exclusion") {
		t.Fatalf("ie count output wrong: %q", ie)
	}
	compile := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "compile")
	if !strings.HasPrefix(compile, "2\t") || !strings.Contains(compile, "algorithm: compile") {
		t.Fatalf("compile count output wrong: %q", compile)
	}
	var sb strings.Builder
	err := run([]string{"count", "-db", db, "-query", exampleQuery, "-exact", "bogus"}, &sb)
	if err == nil {
		t.Fatal("unknown -exact value accepted")
	}
	// The error must name every valid engine, not silently fall through.
	for _, name := range []string{"auto", "factorized", "gray", "ie", "enum"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("-exact error %q does not list engine %q", err, name)
		}
	}
	// enum falls back to FO enumeration on non-EP queries; factorized
	// rejects them.
	fo := runCmd(t, "count", "-db", db, "-query", "!Employee(1, 'Bob', 'HR')", "-exact", "enum")
	if !strings.HasPrefix(fo, "2\t") {
		t.Fatalf("FO enum count output wrong: %q", fo)
	}
	if err := run([]string{"count", "-db", db, "-query", "!Employee(1, 'Bob', 'HR')", "-exact", "factorized"}, &sb); err == nil {
		t.Fatal("factorized accepted an FO query")
	}
}

// -explain prints the exact-counting plan — per-component engine and cost —
// before the count, for auto and forced engines alike.
func TestCountExplain(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-explain")
	if !strings.Contains(out, "plan: engine=factorized") {
		t.Fatalf("explain output missing plan line: %q", out)
	}
	if !strings.Contains(out, "component 0:") || !strings.Contains(out, "gray-cost=") {
		t.Fatalf("explain output missing component detail: %q", out)
	}
	if !strings.Contains(out, "\n2\t") {
		t.Fatalf("explain output missing the count itself: %q", out)
	}
	gray := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "gray", "-explain")
	if !strings.Contains(gray, "-> gray") {
		t.Fatalf("forced-gray explain does not pin the engine: %q", gray)
	}
	ie := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "ie", "-explain")
	if !strings.Contains(ie, "plan: engine=inclusion-exclusion") {
		t.Fatalf("ie explain output wrong: %q", ie)
	}
	compile := runCmd(t, "count", "-db", db, "-query", exampleQuery, "-exact", "compile", "-explain")
	if !strings.Contains(compile, "-> compile") || !strings.Contains(compile, "compile-cost=") {
		t.Fatalf("forced-compile explain does not pin the engine: %q", compile)
	}
}

func TestApprox(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "approx", "-db", db, "-query", exampleQuery, "-eps", "0.2", "-delta", "0.1", "-seed", "5")
	if !strings.Contains(out, "samples") {
		t.Fatalf("approx output wrong: %q", out)
	}
	var est float64
	if _, err := fmtSscanFirst(out, &est); err != nil {
		t.Fatalf("cannot parse estimate from %q: %v", out, err)
	}
	if est < 1.5 || est > 2.5 {
		t.Fatalf("estimate %.2f far from 2", est)
	}
}

func TestTupleBinding(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "count", "-db", db, "-query", "exists n . Employee(1, n, d)", "-tuple", "HR")
	if !strings.HasPrefix(out, "2\t") {
		t.Fatalf("bound count = %q, want 2", out)
	}
}

func TestRank(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "rank", "-db", db, "-query", "exists i . Employee(i, n, 'IT')")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rank output wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "Alice") || !strings.Contains(lines[0], "1/2") {
		t.Fatalf("rank first line wrong: %q", lines[0])
	}
}

func TestAnalyze(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "analyze", "-db", db, "-query", exampleQuery)
	for _, want := range []string{
		"fragment:            CQ",
		"keywidth kw(Q,Σ):    2",
		"blocks:              2 total, 2 conflicting, max size m = 2",
		"certificates:",
		"decision #CQA>0:     true",
		"FPRAS sample bound:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	// FO query: analyze reports the hardness facts instead of certificates.
	foOut := runCmd(t, "analyze", "-db", db, "-query", "!Employee(1, 'Bob', 'HR')")
	if !strings.Contains(foOut, "not existential positive") {
		t.Errorf("FO analyze output wrong:\n%s", foOut)
	}
}

func TestErrors(t *testing.T) {
	db := writeExampleDB(t)
	var sb strings.Builder
	cases := [][]string{
		{},                                      // no command
		{"bogus", "-db", db},                    // unknown command
		{"count", "-db", db},                    // missing query
		{"count"},                               // missing db
		{"count", "-db", "/nonexistent"},        // unreadable db
		{"count", "-db", db, "-query", "R(x))"}, // bad query
		{"freq", "-db", db, "-query", "Employee(1, n, d)"}, // free vars unbound
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestBuildAndSnapshotTransparency: build a .cqs from the text fixture,
// then run every counting command against both; outputs must be
// identical, the format detected by content rather than extension.
func TestBuildAndSnapshotTransparency(t *testing.T) {
	db := writeExampleDB(t)
	snapPath := filepath.Join(t.TempDir(), "example.snapshot") // deliberately not .cqs
	out := runCmd(t, "build", "-db", db, "-o", snapPath)
	if !strings.Contains(out, snapPath) || !strings.Contains(out, "4 facts") {
		t.Fatalf("build output wrong: %q", out)
	}
	for _, args := range [][]string{
		{"total"},
		{"blocks"},
		{"count", "-query", exampleQuery},
		{"count", "-query", exampleQuery, "-exact", "factorized"},
		{"decide", "-query", exampleQuery},
		{"freq", "-query", exampleQuery},
		{"approx", "-query", exampleQuery, "-seed", "3"},
		{"analyze", "-query", exampleQuery},
		{"rank", "-query", "exists i . Employee(i, n, 'IT')"},
	} {
		text := runCmd(t, append([]string{args[0], "-db", db}, args[1:]...)...)
		snap := runCmd(t, append([]string{args[0], "-db", snapPath}, args[1:]...)...)
		if text != snap {
			t.Errorf("%v diverges between text and snapshot:\ntext: %q\nsnap: %q", args, text, snap)
		}
	}
}

// TestBuildDefaultOutput derives the .cqs path from the input path.
func TestBuildDefaultOutput(t *testing.T) {
	db := writeExampleDB(t)
	out := runCmd(t, "build", "-db", db)
	want := strings.TrimSuffix(db, ".db") + ".cqs"
	if !strings.Contains(out, want) {
		t.Fatalf("build output %q does not mention %s", out, want)
	}
	if got := strings.TrimSpace(runCmd(t, "total", "-db", want)); got != "4" {
		t.Fatalf("total over default-built snapshot = %q, want 4", got)
	}
}

// TestStdinInstance feeds both formats through -db -.
func TestStdinInstance(t *testing.T) {
	dbPath := writeExampleDB(t)
	text, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { stdin = os.Stdin }()

	stdin = strings.NewReader(string(text))
	if got := strings.TrimSpace(runCmd(t, "total", "-db", "-")); got != "4" {
		t.Fatalf("total from text stdin = %q, want 4", got)
	}

	stdin = strings.NewReader(string(text))
	snapPath := filepath.Join(t.TempDir(), "out.cqs")
	runCmd(t, "build", "-db", "-", "-o", snapPath)
	snapBytes, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	stdin = strings.NewReader(string(snapBytes))
	if got := strings.TrimSpace(runCmd(t, "decide", "-db", "-", "-query", exampleQuery)); got != "true" {
		t.Fatalf("decide from snapshot stdin = %q, want true", got)
	}

	// build from stdin requires an explicit output path.
	stdin = strings.NewReader(string(text))
	var sb strings.Builder
	if err := run([]string{"build", "-db", "-"}, &sb); err == nil {
		t.Fatal("build -db - without -o succeeded")
	}
}

// TestTextPredicateNamedCQS1: a text instance whose first fact uses a
// predicate literally named CQS1 must still parse as text (format
// sniffing checks the binary version word, not just the magic).
func TestTextPredicateNamedCQS1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tricky.db")
	if err := os.WriteFile(path, []byte("key CQS1 1\nCQS1(a, b)\nCQS1(a, c)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(runCmd(t, "total", "-db", path)); got != "2" {
		t.Fatalf("total over CQS1-predicate text instance = %q, want 2", got)
	}
}

// TestNonSeekablePath: format sniffing must not require a seekable file —
// FIFOs and process substitution (`-db <(...)`) worked before snapshots
// existed and must keep working.
func TestNonSeekablePath(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("uses /proc/self/fd to name a pipe")
	}
	text, err := os.ReadFile(writeExampleDB(t))
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	go func() {
		w.Write(text)
		w.Close()
	}()
	path := fmt.Sprintf("/proc/self/fd/%d", r.Fd())
	if got := strings.TrimSpace(runCmd(t, "total", "-db", path)); got != "4" {
		t.Fatalf("total over pipe path = %q, want 4", got)
	}
}

// TestMissingFileError: a nonexistent path gets the explicit message, not
// a bare open error.
func TestMissingFileError(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"count", "-db", "/no/such/instance.db", "-query", exampleQuery}, &sb)
	if err == nil || !strings.Contains(err.Error(), `does not exist`) {
		t.Fatalf("missing-file error = %v, want a does-not-exist message", err)
	}
}

// TestCorruptSnapshotError: flipping a byte in a .cqs must surface the
// checksum failure.
func TestCorruptSnapshotError(t *testing.T) {
	db := writeExampleDB(t)
	snapPath := filepath.Join(t.TempDir(), "corrupt.cqs")
	runCmd(t, "build", "-db", db, "-o", snapPath)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"total", "-db", snapPath}, &sb); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt snapshot error = %v, want corruption message", err)
	}
}

// fmtSscanFirst extracts the leading float from a line.
func fmtSscanFirst(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	*v = f
	return 1, err
}

// TestApplyAndCompact drives the journal lifecycle end to end from the
// CLI: build a snapshot, append ops, verify every command sees the mutated
// instance, compact, and verify identical outputs from base+journal, the
// compacted reseal, and the equivalent text instance.
func TestApplyAndCompact(t *testing.T) {
	dir := t.TempDir()
	dbPath := writeExampleDB(t)
	snapPath := filepath.Join(dir, "example.cqs")
	runCmd(t, "build", "-db", dbPath, "-o", snapPath)

	opsPath := filepath.Join(dir, "stream.ops")
	if err := os.WriteFile(opsPath, []byte(`
# toggle Tim out, add a third employee in HR
- Employee(2, Tim, IT)
+ Employee(3, Zoe, HR)
+ Employee(3, Zoe, IT)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "apply", "-db", snapPath, "-ops", opsPath)
	if !strings.Contains(out, "3 ops appended") {
		t.Fatalf("apply output %q", out)
	}

	// Equivalent text instance after the ops.
	textPath := filepath.Join(dir, "mutated.db")
	if err := os.WriteFile(textPath, []byte(`
key Employee 1
Employee(1, Bob, HR)
Employee(1, Bob, IT)
Employee(2, Alice, IT)
Employee(3, Zoe, HR)
Employee(3, Zoe, IT)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	compactPath := filepath.Join(dir, "compact.cqs")
	runCmd(t, "compact", "-db", snapPath, "-o", compactPath)

	for _, cmd := range [][]string{
		{"total"},
		{"blocks"},
		{"count", "-query", exampleQuery},
		{"count", "-query", exampleQuery, "-exact", "factorized"},
		{"decide", "-query", exampleQuery},
		{"freq", "-query", exampleQuery},
	} {
		want := runCmd(t, append(cmd, "-db", textPath)...)
		journaled := runCmd(t, append(cmd, "-db", snapPath)...)
		compacted := runCmd(t, append(cmd, "-db", compactPath)...)
		if journaled != want {
			t.Fatalf("%v: journaled %q vs text %q", cmd, journaled, want)
		}
		if compacted != want {
			t.Fatalf("%v: compacted %q vs text %q", cmd, compacted, want)
		}
	}

	// apply reads ops from stdin with -ops -.
	old := stdin
	stdin = strings.NewReader("+ Employee(2, Ann, HR)\n") // conflicts with Alice: total doubles
	out = runCmd(t, "apply", "-db", snapPath)
	stdin = old
	if !strings.Contains(out, "1 ops appended") {
		t.Fatalf("stdin apply output %q", out)
	}
	afterTotal := runCmd(t, "total", "-db", snapPath)
	if afterTotal == runCmd(t, "total", "-db", compactPath) {
		t.Fatal("second journal block not visible")
	}

	// Guard rails: apply refuses text instances and compact requires -o.
	if err := run([]string{"apply", "-db", textPath, "-ops", opsPath}, io.Discard); err == nil {
		t.Fatal("apply on a text instance succeeded")
	}
	if err := run([]string{"compact", "-db", snapPath}, io.Discard); err == nil {
		t.Fatal("compact without -o succeeded")
	}
}

// Full sharding pipeline through the CLI: build → shard → count -shard per
// shard → merge must reproduce the direct count exactly.
func TestShardPipelineCLI(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "skew.db")
	if err := os.WriteFile(db, []byte(`
key S0 1
key S1 1
key S2 1
S0(a, v0)
S0(a, v1)
S0(b, v0)
S0(b, v1)
S1(c, v0)
S1(c, v1)
S1(d, v0)
S1(d, v1)
S2(e, v0)
S2(e, v1)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	q := "(exists x, y . (S0(x,'v0') & S0(y,'v1'))) | (exists x, y . (S1(x,'v0') & S1(y,'v1'))) | (exists x, y . (S2(x,'v0') & S2(y,'v1')))"
	snap := filepath.Join(dir, "skew.cqs")
	runCmd(t, "build", "-db", db, "-o", snap)
	direct := strings.SplitN(runCmd(t, "count", "-db", snap, "-query", q, "-workers", "2"), "\t", 2)[0]

	shardDir := filepath.Join(dir, "shards")
	out := runCmd(t, "shard", "-db", snap, "-query", q, "-k", "3", "-o", shardDir, "-explain")
	if !strings.Contains(out, "shard 0:") || !strings.Contains(out, "cost=") ||
		!strings.Contains(out, "excluded factor:") || !strings.Contains(out, "manifest digest") {
		t.Fatalf("shard -explain output wrong:\n%s", out)
	}
	manifest := filepath.Join(shardDir, "manifest.cqsm")
	var partials []string
	for s := 0; s < 3; s++ {
		shardSnap := filepath.Join(shardDir, fmt.Sprintf("shard-%03d.cqs", s))
		partial := filepath.Join(shardDir, fmt.Sprintf("part-%d.cqsp", s))
		out := runCmd(t, "count", "-db", shardSnap, "-query", q, "-shard", manifest, "-partial", partial)
		if !strings.Contains(out, "inner ") || !strings.Contains(out, "nonent ") {
			t.Fatalf("count -shard output wrong: %q", out)
		}
		partials = append(partials, partial)
	}
	merged := strings.TrimSpace(runCmd(t, "merge", "-manifest", manifest, partials[0], partials[1], partials[2]))
	if merged != direct {
		t.Fatalf("merge = %s, direct count = %s", merged, direct)
	}
	// 2^5 − 2^3 = 24 pins the arithmetic end to end.
	if merged != "24" {
		t.Fatalf("merge = %s, closed form 24", merged)
	}

	// Incomplete and mixed sets must fail, never miscount.
	var sb strings.Builder
	if err := run([]string{"merge", "-manifest", manifest, partials[0]}, &sb); err == nil {
		t.Fatal("merge accepted an incomplete partial set")
	}
	if err := run([]string{"merge", "-manifest", manifest, partials[0], partials[1], partials[1]}, &sb); err == nil {
		t.Fatal("merge accepted a duplicated partial")
	}

	// A snapshot outside the shard set must be refused by count -shard.
	if err := run([]string{"count", "-db", snap, "-query", q, "-shard", manifest,
		"-partial", filepath.Join(dir, "bogus.cqsp")}, &sb); err == nil {
		t.Fatal("count -shard accepted a non-shard snapshot")
	}
	// So must the wrong query.
	if err := run([]string{"count", "-db", filepath.Join(shardDir, "shard-000.cqs"),
		"-query", "exists x . S0(x, 'v0')", "-shard", manifest,
		"-partial", filepath.Join(dir, "bogus.cqsp")}, &sb); err == nil {
		t.Fatal("count -shard accepted a foreign query")
	}
}

// -workers is accepted by every exact engine spelling.
func TestCountWorkersFlag(t *testing.T) {
	db := writeExampleDB(t)
	for _, exact := range []string{"", "factorized", "gray", "ie", "enum"} {
		args := []string{"count", "-db", db, "-query", exampleQuery, "-workers", "2"}
		if exact != "" {
			args = append(args, "-exact", exact)
		}
		out := runCmd(t, args...)
		if !strings.HasPrefix(out, "2\t") {
			t.Fatalf("-exact %q -workers 2: output %q", exact, out)
		}
	}
}

// Command repairctl answers repair-counting questions over a database
// instance and a query, from the command line.
//
// The instance is either a text file in the codec of internal/relational:
//
//	key Employee 1
//	Employee(1, Bob, HR)
//	Employee(1, Bob, IT)
//
// or a binary .cqs snapshot produced by the build subcommand — every
// command detects the format from the file contents, and "-" reads the
// instance from stdin.
//
// Usage:
//
//	repairctl build  -db employees.db -o employees.cqs
//	repairctl total  -db employees.db
//	repairctl count  -db employees.cqs -query "exists x,y,z . (Employee(1,x,y) & Employee(2,z,y))"
//	repairctl count  -db employees.db -query "..." -exact gray     # or: factorized, ie, compile, enum
//	repairctl count  -db employees.db -query "..." -explain
//
// build converts a text instance into a mmap-able columnar snapshot that
// loads with zero parsing; count picks the best algorithm by default, and
// -exact pins one engine — factorized (planner-selected per-component
// engines), gray (every component forced onto the Gray-delta walk), ie
// (whole-instance inclusion–exclusion), compile (per-component d-DNNF
// circuits, reused across recounts) or enum (plain enumeration) — so the
// engines are comparable. -explain prints the exact-counting plan (one
// line per connected component: block and box counts, the cost of the Gray
// walk, of component-local inclusion–exclusion and of the circuit engine,
// plus the node count of an already-cached circuit, and the chosen engine)
// before counting.
//
// Snapshots are mutable without rewriting: apply appends a checksummed
// delta-journal block of inserts/deletes (one "+ Fact" or "- Fact" per
// line, e.g. from workloadgen -updates) after the sealed base, every load
// replays the journal through the incremental maintenance machinery, and
// compact reseals a clean snapshot with identical counts.
//
//	repairctl apply   -db employees.cqs -ops stream.ops
//	echo '+ Employee(3, Zoe, HR)' | repairctl apply -db employees.cqs
//	repairctl compact -db employees.cqs -o resealed.cqs
//
// serve keeps one snapshot mapped in a long-lived HTTP/JSON daemon: count,
// decide, rank and explain probes are priced by an admission ladder (cheap
// plans exact, expensive plans degraded to the FPRAS, hopeless ones
// refused with a structured 429), an -ops file is tailed, journaled and
// compacted crash-safely, and startup recovers torn journal tails.
//
//	repairctl serve -db employees.cqs -addr :8347 -ops stream.ops
//	curl 'http://localhost:8347/v1/count?q=exists+i,n+.+Employee(i,n,%27IT%27)'
//	curl 'http://localhost:8347/v1/stats'
//
// With -probs FILE (per-fact "weight<TAB>Fact" annotations, e.g. from
// workloadgen -kind prob-stream), /v1/prob serves the probability that a
// random repair entails the query, evaluated on the compiled d-DNNF
// circuits as an outward-rounded interval; unannotated facts weigh 1, and
// without -probs the endpoint serves the uniform ratio count/total. There
// is no approximate rung for weighted counting: probes past the exact
// budget get a structured 429.
//
//	repairctl serve -db prob.cqs -probs weights.probs
//	curl 'http://localhost:8347/v1/prob?q=...'
//
// The daemon splits the cores between two kinds of parallelism:
// -serve-workers slots run probes concurrently (throughput under many
// clients), while -workers goroutines parallelize the enumeration
// inside ONE exact count or sampling loop (latency of a single
// expensive probe). More of one is less of the other under load; serve
// and coordinate default -serve-workers to GOMAXPROCS and -workers to a
// quarter of it, so many cheap probes run wide while a lone hot count
// still gets a few cores. Hot repeated probes bypass counting entirely:
// a shared cache (bounded by -cache-entries, default 512; 0 disables)
// keeps compiled counters, admission prices and finished exact results
// keyed by (query, epoch, version), and /v1/stats reports its
// hit/miss/eviction counters.
//
//	repairctl decide -db employees.db -query "..."
//	repairctl freq   -db employees.db -query "..."
//	repairctl approx -db employees.db -query "..." -eps 0.1 -delta 0.05 -seed 1
//	repairctl rank   -db employees.db -query "exists i . Employee(i, n, 'IT')"
//	repairctl blocks -db employees.db
//	cat employees.db | repairctl decide -db - -query "..."
//
// Sharded counting splits the exact count across processes or machines:
// shard slices a sealed snapshot into K self-contained shard snapshots
// (one cost-balanced group of query-graph components each, -explain prints
// the per-shard cost table) plus a CQSM manifest; count -shard verifies a
// shard against the manifest, counts it, and writes a CQSP partial file;
// merge recombines a complete, digest-verified partial set into the exact
// global count — bit-identical to counting the unsharded snapshot.
//
//	repairctl shard -db employees.cqs -query "..." -k 4 -o shards/ -explain
//	repairctl count -db shards/shard-000.cqs -query "..." \
//	    -shard shards/manifest.cqsm -partial shards/p0.cqsp
//	repairctl merge -manifest shards/manifest.cqsm shards/p*.cqsp
//
// Distributed serving runs the sharded pipeline as a live fleet: worker
// serves one shard snapshot over HTTP (assigned by the coordinator, and
// remembered across restarts in its -dir sidecar), while coordinate owns
// the full snapshot, cuts epoch shard sets into -shard-dir, assigns the
// -peers fleet, tails -ops and streams each delta to the shards it
// touches, and serves the probe API by fanning the partition -query out
// to the fleet — every partial digest-, epoch- and version-verified
// before the merge, so answers are bit-identical to the single-node
// daemon or a structured error, never a miscount. A down worker degrades
// probes to exact local counting until the maintenance loop heals it.
//
//	repairctl worker -dir w0/ -addr :9101
//	repairctl worker -dir w1/ -addr :9102
//	repairctl coordinate -db employees.cqs -query "exists i,n . Employee(i,n,'IT')" \
//	    -peers http://localhost:9101,http://localhost:9102 \
//	    -shard-dir shards/ -ops stream.ops -addr :8347
//	curl 'http://localhost:8347/v1/count?q=exists+i,n+.+Employee(i,n,%27IT%27)'
//	curl 'http://localhost:8347/v1/stats'   # fleet state: epoch, acks, pending
//	curl 'http://localhost:9101/v1/stats'   # one shard's view
//
// count also takes -workers N to size the worker pool of the parallel
// exact engines (0 means GOMAXPROCS, uniformly across every -exact
// engine).
//
// Non-Boolean queries: count/decide/freq/approx take -tuple "c1,c2,..." to
// bind the free variables (sorted by name); rank scores every candidate
// tuple by its relative frequency.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"math/big"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repaircount"
	"repaircount/internal/cluster"
	"repaircount/internal/core"
	"repaircount/internal/faultfs"
	"repaircount/internal/relational"
	"repaircount/internal/server"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

func main() {
	// Deterministic crash testing: REPAIRCOUNT_FAULT="budget=N[,exit]"
	// makes the N-th faultfs write unit fail (or fail-stop the process),
	// so scripts can drive the daemon's write path into every crash point.
	faultfs.FromEnv("REPAIRCOUNT_FAULT")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repairctl:", err)
		os.Exit(1)
	}
}

// stdin is the reader "-db -" consumes; tests substitute it.
var stdin io.Reader = os.Stdin

// instance is one opened database instance, whichever format it came in.
type instance struct {
	db   *repaircount.Database
	keys *repaircount.KeySet
	snap *repaircount.Snapshot // non-nil when loaded from a snapshot
}

// counter builds a counter, reusing the snapshot's preloaded block
// sequence and index when the instance came from one.
func (in *instance) counter(q repaircount.Formula) (*repaircount.Counter, error) {
	if in.snap != nil {
		return in.snap.Counter(q)
	}
	return repaircount.NewCounter(in.db, in.keys, q)
}

// blockSeq returns the canonical block sequence, preloaded for snapshots.
func (in *instance) blockSeq() []repaircount.Block {
	if in.snap != nil {
		return in.snap.Blocks()
	}
	return relational.Blocks(in.db, in.keys)
}

// rank scores candidate tuples, sharing the snapshot's structures when
// available.
func (in *instance) rank(q repaircount.Formula) ([]repaircount.RankedAnswer, error) {
	if in.snap != nil {
		return in.snap.RankAnswers(q)
	}
	return repaircount.RankAnswers(in.db, in.keys, q)
}

func (in *instance) close() {
	if in.snap != nil {
		in.snap.Close()
	}
}

// openInstance loads the instance at path — a text file, a .cqs snapshot
// (detected by magic, not extension), or "-" for stdin.
func openInstance(path string) (*instance, error) {
	if path == "-" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return nil, fmt.Errorf("read stdin: %w", err)
		}
		if store.Sniff(data) {
			snap, err := repaircount.DecodeSnapshot(data)
			if err != nil {
				return nil, err
			}
			return &instance{db: snap.Database(), keys: snap.Keys(), snap: snap}, nil
		}
		db, keys, err := repaircount.ParseInstanceString(string(data))
		if err != nil {
			return nil, err
		}
		return &instance{db: db, keys: keys}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("database file %q does not exist (pass a text instance, a .cqs snapshot, or '-' to read stdin)", path)
		}
		return nil, err
	}
	defer f.Close()
	// Peek instead of read-and-seek so non-seekable paths (FIFOs, process
	// substitution) keep working.
	br := bufio.NewReader(f)
	head, _ := br.Peek(8)
	if store.Sniff(head) {
		if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
			snap, err := repaircount.OpenSnapshot(path)
			if err != nil {
				return nil, err
			}
			return &instance{db: snap.Database(), keys: snap.Keys(), snap: snap}, nil
		}
		// A snapshot streamed through a pipe cannot be mapped; decode it
		// from memory like the stdin path.
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		snap, err := repaircount.DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		return &instance{db: snap.Database(), keys: snap.Keys(), snap: snap}, nil
	}
	db, keys, err := repaircount.ParseInstance(br)
	if err != nil {
		return nil, err
	}
	return &instance{db: db, keys: keys}, nil
}

// serveCountWorkers resolves the -workers flag for the serving daemons.
// The daemons favor probe-level parallelism (one slot per core), but a
// lone expensive probe should not be stuck single-threaded on an
// otherwise idle machine, so unset defaults to a small fraction of the
// cores instead of the library default of 1.
func serveCountWorkers(flagged int) int {
	if flagged > 0 {
		return flagged
	}
	return max(1, runtime.GOMAXPROCS(0)/4)
}

// configCacheEntries maps the -cache-entries flag (0 disables) onto the
// Config field (negative disables, 0 selects the default).
func configCacheEntries(flagged int) int {
	if flagged <= 0 {
		return -1
	}
	return flagged
}

// run executes one repairctl invocation; it is the testable core of main.
func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return usageError()
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		dbPath   = fs.String("db", "", "path to the database instance (text or .cqs; '-' reads stdin)")
		out      = fs.String("o", "", "output path for build (default: input path with .cqs extension)")
		queryStr = fs.String("query", "", "first-order query")
		tuple    = fs.String("tuple", "", "comma-separated constants binding the query's free variables")
		eps      = fs.Float64("eps", 0.1, "FPRAS relative error ε")
		delta    = fs.Float64("delta", 0.05, "FPRAS failure probability δ")
		seed     = fs.Uint64("seed", 1, "FPRAS random seed")
		exact    = fs.String("exact", "auto", "exact engine for count: auto, factorized, gray, ie, compile or enum")
		explain  = fs.Bool("explain", false, "print the exact-counting plan (per-component engine and cost) before the count")
		opsPath  = fs.String("ops", "-", "path to the update-op stream for apply ('-' reads stdin)")
		workers  = fs.Int("workers", 0, "worker goroutines for the parallel exact engines (0 = GOMAXPROCS)")
		kShards  = fs.Int("k", 2, "number of shards for shard")
		shardMan = fs.String("shard", "", "CQSM manifest path: count one shard snapshot and write a partial")
		partial  = fs.String("partial", "", "output path for the CQSP partial written by count -shard")
		manifest = fs.String("manifest", "", "CQSM manifest path for merge")

		addr         = fs.String("addr", "localhost:8347", "listen address for serve (':0' picks a free port, printed on startup)")
		poll         = fs.Duration("poll", 0, "ops-file poll interval for serve (0 = 200ms)")
		deadline     = fs.Duration("deadline", 0, "per-probe wall-clock budget for serve (0 = 30s)")
		exactBudget  = fs.Int64("exact-budget", 0, "serve admission ceiling on planned exact work (0 = the enumeration budget)")
		maxSamples   = fs.Int64("max-samples", 0, "serve admission ceiling on the FPRAS sample bound (0 = the sampler cap)")
		compactBytes = fs.Int64("compact-bytes", 0, "journal bytes that trigger serve's compaction (0 = 1MiB, negative disables)")
		serveWorkers = fs.Int("serve-workers", 0, "probe worker slots for serve (0 = GOMAXPROCS)")
		cacheEntries = fs.Int("cache-entries", server.DefaultCacheEntries,
			"bound on the serve/coordinate probe cache (compiled counters, admissions, results); 0 disables it")
		probsPath = fs.String("probs", "", "per-fact probability annotation file for serve's /v1/prob endpoint (weight<TAB>Fact lines, e.g. from workloadgen -kind prob-stream)")

		workerDir    = fs.String("dir", "", "worker state directory (required for worker; holds the assignment sidecar)")
		peers        = fs.String("peers", "", "comma-separated worker base URLs for coordinate")
		shardDir     = fs.String("shard-dir", "", "directory receiving one epoch-N shard set per re-shard (required for coordinate)")
		retries      = fs.Int("retries", 0, "fetch attempts per shard for coordinate (0 = 3)")
		retryBackoff = fs.Duration("retry-backoff", 0, "initial inter-attempt backoff for coordinate, doubling per retry (0 = 50ms)")
		hedgeAfter   = fs.Duration("hedge-after", 0, "per-attempt timeout before a slow shard fetch is abandoned and re-fired (0 = 2s)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	// merge consumes a manifest plus partial files, not an instance.
	if cmd == "merge" {
		if *manifest == "" {
			return fmt.Errorf("merge: -manifest is required")
		}
		if len(fs.Args()) == 0 {
			return fmt.Errorf("merge: pass the CQSP partial files as arguments")
		}
		n, err := repaircount.MergePartialFiles(*manifest, fs.Args()...)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, n)
		return nil
	}

	// worker holds no data until a coordinator assigns it a shard, so it
	// takes no -db at all — only a state directory.
	if cmd == "worker" {
		if *workerDir == "" {
			return fmt.Errorf("worker: -dir is required")
		}
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Dir:          *workerDir,
			Workers:      *serveWorkers,
			CountWorkers: *workers,
			Deadline:     *deadline,
		})
		if err != nil {
			return err
		}
		defer w.Close()
		return serveHandler(stdout, *addr, w.Handler())
	}

	if *dbPath == "" {
		return fmt.Errorf("-db is required")
	}

	// apply, compact, serve and coordinate operate on the snapshot file
	// itself, not a loaded instance.
	switch cmd {
	case "apply":
		return applyOps(stdout, *dbPath, *opsPath)
	case "compact":
		return compact(stdout, *dbPath, *out)
	case "serve":
		// For apply, -ops defaults to stdin; the daemon tails a file, so
		// "-" means no update stream.
		ops := *opsPath
		if ops == "-" {
			ops = ""
		}
		return serve(stdout, *addr, server.Config{
			SnapshotPath: *dbPath,
			OpsPath:      ops,
			Workers:      *serveWorkers,
			CountWorkers: serveCountWorkers(*workers),
			Deadline:     *deadline,
			ExactBudget:  *exactBudget,
			MaxSamples:   *maxSamples,
			Eps:          *eps,
			Delta:        *delta,
			Seed:         *seed,
			Poll:         *poll,
			CompactBytes: *compactBytes,
			CacheEntries: configCacheEntries(*cacheEntries),
			ProbsPath:    *probsPath,
		})
	case "coordinate":
		if *queryStr == "" {
			return fmt.Errorf("coordinate: -query is required")
		}
		if *peers == "" {
			return fmt.Errorf("coordinate: -peers is required")
		}
		if *shardDir == "" {
			return fmt.Errorf("coordinate: -shard-dir is required")
		}
		ops := *opsPath
		if ops == "-" {
			ops = ""
		}
		co, err := cluster.New(cluster.Config{
			SnapshotPath: *dbPath,
			Query:        *queryStr,
			Peers:        strings.Split(*peers, ","),
			ShardDir:     *shardDir,
			OpsPath:      ops,
			Workers:      *serveWorkers,
			CountWorkers: serveCountWorkers(*workers),
			Deadline:     *deadline,
			ExactBudget:  *exactBudget,
			MaxSamples:   *maxSamples,
			Eps:          *eps,
			Delta:        *delta,
			Seed:         *seed,
			Poll:         *poll,
			CompactBytes: *compactBytes,
			Retries:      *retries,
			RetryBackoff: *retryBackoff,
			HedgeAfter:   *hedgeAfter,
			CacheEntries: configCacheEntries(*cacheEntries),
		})
		if err != nil {
			return err
		}
		defer co.Close()
		return serveHandler(stdout, *addr, co.Handler())
	}

	src, err := openInstance(*dbPath)
	if err != nil {
		return err
	}
	defer src.close()

	switch cmd {
	case "build":
		return build(stdout, src, *dbPath, *out)
	case "total":
		fmt.Fprintln(stdout, relational.NumRepairsOfBlocks(src.blockSeq()))
		return nil
	case "blocks":
		for _, b := range src.blockSeq() {
			fmt.Fprintf(stdout, "%s  size=%d\n", b.Key, b.Size())
			for _, fact := range b.Facts {
				fmt.Fprintf(stdout, "  %s\n", fact)
			}
		}
		return nil
	}

	if *queryStr == "" {
		return fmt.Errorf("-query is required for %q", cmd)
	}
	q, err := repaircount.ParseQuery(*queryStr)
	if err != nil {
		return err
	}

	if cmd == "rank" {
		ranked, err := src.rank(q)
		if err != nil {
			return err
		}
		for _, r := range ranked {
			parts := make([]string, len(r.Tuple))
			for i, c := range r.Tuple {
				parts[i] = string(c)
			}
			fl, _ := r.Frequency.Float64()
			fmt.Fprintf(stdout, "%-30s %-10s %8.4f\n", strings.Join(parts, ","), r.Frequency.RatString(), fl)
		}
		return nil
	}

	if *tuple != "" {
		var consts []repaircount.Const
		for _, c := range strings.Split(*tuple, ",") {
			consts = append(consts, repaircount.Const(strings.TrimSpace(c)))
		}
		q, err = repaircount.Bind(q, consts...)
		if err != nil {
			return err
		}
	}
	counter, err := src.counter(q)
	if err != nil {
		return err
	}

	switch cmd {
	case "count":
		if *shardMan != "" {
			return countShard(stdout, src, counter, q, *shardMan, *partial, *workers)
		}
		engine, err := repaircount.ParseEngine(*exact)
		if err != nil {
			return fmt.Errorf("-exact: %w", err)
		}
		if *explain {
			if err := explainPlan(stdout, counter, engine); err != nil {
				return err
			}
		}
		var n *big.Int
		algo := engine
		if engine == repaircount.EngineAuto {
			n, algo, err = counter.CountWorkers(*workers)
		} else {
			n, err = counter.CountWithWorkers(engine, *workers)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\t(algorithm: %s, keywidth: %d, fragment: %s)\n", n, algo, counter.Keywidth(), counter.Fragment())
	case "shard":
		return shard(stdout, src, counter, *kShards, *out, *explain)
	case "analyze":
		return analyze(stdout, counter, *eps, *delta)
	case "decide":
		fmt.Fprintln(stdout, counter.Decide())
	case "freq":
		r, err := counter.RelativeFrequency()
		if err != nil {
			return err
		}
		fl, _ := r.Float64()
		fmt.Fprintf(stdout, "%s\t(≈ %.6f)\n", r.RatString(), fl)
	case "approx":
		est, err := counter.Approximate(*eps, *delta, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\t(t=%d samples, %d hits, ε=%g, δ=%g)\n",
			est.Value.Text('f', 2), est.Samples, est.Hits, *eps, *delta)
	default:
		return usageError()
	}
	return nil
}

// build converts the opened instance into a .cqs snapshot with all
// precomputed sections, so later loads skip parsing and indexing entirely.
func build(stdout io.Writer, src *instance, dbPath, out string) error {
	if out == "" {
		if dbPath == "-" {
			return fmt.Errorf("build: -o is required when reading stdin")
		}
		out = strings.TrimSuffix(dbPath, ".db") + ".cqs"
	}
	if err := store.WriteFile(out, src.db, src.keys); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\t%d facts, %d bytes\n", out, src.db.Len(), st.Size())
	return nil
}

// applyOps appends the op stream at opsPath as one delta-journal block to
// the snapshot at dbPath — an O(ops) append that leaves the sealed base
// untouched. Loads replay the journal; compact reseals it away.
func applyOps(stdout io.Writer, dbPath, opsPath string) error {
	var r io.Reader
	if opsPath == "-" {
		r = stdin
	} else {
		f, err := os.Open(opsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	updates, err := workload.ParseUpdates(r)
	if err != nil {
		return err
	}
	if len(updates) == 0 {
		return fmt.Errorf("apply: no ops in %s", opsPath)
	}
	ops := make([]store.JournalOp, len(updates))
	for i, u := range updates {
		ops[i] = store.JournalOp{Del: u.Del, Fact: u.Fact}
	}
	if err := store.AppendJournal(dbPath, ops); err != nil {
		return err
	}
	st, err := os.Stat(dbPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\t%d ops appended, %d bytes\n", dbPath, len(ops), st.Size())
	return nil
}

// compact reseals a snapshot (base plus journal) as a clean journal-free
// snapshot at out.
func compact(stdout io.Writer, dbPath, out string) error {
	if out == "" {
		return fmt.Errorf("compact: -o is required")
	}
	if err := store.CompactFile(dbPath, out); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\t%d bytes\n", out, st.Size())
	return nil
}

// shard slices the opened instance into k cost-balanced shard snapshots
// plus a CQSM manifest in dir; explain additionally prints the per-shard
// cost table the greedy bin-packing produced.
func shard(stdout io.Writer, src *instance, counter *repaircount.Counter, k int, dir string, explain bool) error {
	if dir == "" {
		return fmt.Errorf("shard: -o DIR is required")
	}
	plan, err := counter.PlanShards(k)
	if err != nil {
		return err
	}
	var baseCRC uint64
	if src.snap != nil {
		if n := src.snap.NumJournalOps(); n > 0 {
			return fmt.Errorf("shard: snapshot carries %d journal ops; run repairctl compact first", n)
		}
		baseCRC = src.snap.Digest()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	set, err := counter.WriteShards(dir, plan, baseCRC)
	if err != nil {
		return err
	}
	if explain {
		for s, ms := range set.Manifest.Shards {
			fmt.Fprintf(stdout, "shard %d: components=%d blocks=%d cost=%d -> %s (digest %016x)\n",
				s, ms.Components, ms.Blocks, ms.Cost, set.Paths[s], ms.CRC)
		}
		fmt.Fprintf(stdout, "excluded factor: %s\n", set.Manifest.Outer)
	}
	fmt.Fprintf(stdout, "%s\t%d shards, manifest digest %016x\n", set.ManifestPath, plan.K, set.ManifestCRC)
	return nil
}

// countShard counts one shard snapshot against its manifest: the snapshot
// is located in the shard set by its sealed-base digest, the query is
// checked against the partition's, and the result is written as a CQSP
// partial for merge.
func countShard(stdout io.Writer, src *instance, counter *repaircount.Counter, q repaircount.Formula, manifestPath, partialPath string, workers int) error {
	if partialPath == "" {
		return fmt.Errorf("count: -partial OUT is required with -shard")
	}
	man, mcrc, err := store.ReadManifestFile(manifestPath)
	if err != nil {
		return err
	}
	if qs := fmt.Sprintf("%v", q); qs != man.Query {
		return fmt.Errorf("count: query %q is not the manifest's partition query %q", qs, man.Query)
	}
	if src.snap == nil {
		return fmt.Errorf("count: -shard needs a .cqs shard snapshot, not a text instance")
	}
	if n := src.snap.NumJournalOps(); n > 0 {
		return fmt.Errorf("count: shard snapshot carries %d journal ops and no longer matches its manifest digest", n)
	}
	digest := src.snap.Digest()
	idx := -1
	for i, s := range man.Shards {
		if s.CRC == digest {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("count: snapshot digest %016x is not a shard of %s", digest, manifestPath)
	}
	p, err := counter.CountPartial(workers)
	if err != nil {
		return err
	}
	pf := &store.PartialFile{
		ManifestCRC: mcrc,
		Shard:       idx,
		K:           len(man.Shards),
		SnapshotCRC: digest,
		Inner:       p.Inner,
		NonEnt:      p.NonEnt,
	}
	if err := store.WritePartialFile(partialPath, pf); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\tshard %d/%d, inner %s, nonent %s\n", partialPath, idx, len(man.Shards), p.Inner, p.NonEnt)
	return nil
}

// explainPlan prints the exact-counting plan for the selected engine: the
// overall algorithm and, for the factorized engine, one line per connected
// component with its block and box counts, the costs of both per-component
// engines, and the planner's choice.
func explainPlan(stdout io.Writer, counter *repaircount.Counter, engine repaircount.EngineKind) error {
	p, err := counter.ExplainPlan(engine)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "plan: %s\n", p)
	if p.AlwaysTrue {
		fmt.Fprintf(stdout, "  always true: some homomorphism uses only always-present facts (#CQA = |rep|)\n")
	}
	// Costs saturate at MaxInt64 when a strategy is infeasible (a choice
	// space past 2^63, ≥ 62 boxes, or the masked path's missing boxes);
	// print the sentinel as "inf" rather than a bogus number.
	cost := func(v int64) string {
		if v == math.MaxInt64 {
			return "inf"
		}
		return fmt.Sprintf("%d", v)
	}
	for i, c := range p.Components {
		memo := ""
		if c.Memoized {
			memo = ", memoized"
		}
		if c.CircuitNodes > 0 {
			// A cached d-DNNF circuit reprices the compile engine at its
			// node count (one bottom-up evaluation), not a fresh compile.
			memo += fmt.Sprintf(", circuit=%d nodes", c.CircuitNodes)
		}
		ie := cost(c.IECost)
		if c.Boxes == 0 {
			ie = "n/a"
		}
		fmt.Fprintf(stdout, "  component %d: blocks=%d boxes=%d gray-cost=%s ie-cost=%s compile-cost=%s -> %s (cost %s%s)\n",
			i, c.Blocks, c.Boxes, cost(c.GrayCost), ie, cost(c.CompileCost), c.Engine, cost(c.Cost), memo)
	}
	return nil
}

// analyze reports which machinery of the paper applies to the instance:
// fragment, keywidth (the Λ-hierarchy level, Theorem 5.1), block
// statistics, the certificate space of Algorithm 2, safe-plan
// applicability ([8] dichotomy), the Λ[1] closed form, and the FPRAS
// sample bound for the requested (ε, δ).
func analyze(stdout io.Writer, counter *repaircount.Counter, eps, delta float64) error {
	inst := counter.Instance()
	fmt.Fprintf(stdout, "fragment:            %s\n", counter.Fragment())
	fmt.Fprintf(stdout, "keywidth kw(Q,Σ):    %d  (#CQA(Q,Σ) is Λ[%d]-complete, Thm 5.1)\n",
		counter.Keywidth(), counter.Keywidth())
	blocks := inst.Blocks
	maxB := relational.MaxBlockSize(blocks)
	conflicting := 0
	for _, b := range blocks {
		if b.Size() > 1 {
			conflicting++
		}
	}
	fmt.Fprintf(stdout, "blocks:              %d total, %d conflicting, max size m = %d\n",
		len(blocks), conflicting, maxB)
	fmt.Fprintf(stdout, "repairs:             %s\n", counter.Total())
	if !inst.IsEP {
		fmt.Fprintf(stdout, "query is not existential positive: decision is NP-complete and\n")
		fmt.Fprintf(stdout, "counting #P-complete under ≤log_m (Thms 3.2/3.3); no FPRAS unless RP=NP (Thm 6.1).\n")
		return nil
	}
	nCerts := 0
	for range inst.Certificates() {
		nCerts++
	}
	boxes := inst.CertificateBoxes()
	fmt.Fprintf(stdout, "certificates:        %d  (distinct boxes: %d)\n", nCerts, len(boxes))
	fmt.Fprintf(stdout, "decision #CQA>0:     %v  (logspace certificate search, Thm 3.4)\n", counter.Decide())
	if _, ok := inst.CountSafePlan(); ok {
		fmt.Fprintf(stdout, "safe plan:           applies — exact counting is polynomial ([8] dichotomy)\n")
	} else {
		fmt.Fprintf(stdout, "safe plan:           does not apply (unsafe or not a self-join-free CQ)\n")
	}
	if _, err := inst.CountLambda1(); err == nil {
		fmt.Fprintf(stdout, "Λ[1] closed form:    applies — linear-time exact count (Thm 4.4(1))\n")
	} else {
		fmt.Fprintf(stdout, "Λ[1] closed form:    does not apply (some box pins ≥ 2 blocks)\n")
	}
	bound := core.SampleBound(maxB, counter.Keywidth(), eps, delta)
	fmt.Fprintf(stdout, "FPRAS sample bound:  t = (2+ε)·m^k/ε²·ln(2/δ) = %s  (ε=%g, δ=%g)\n",
		bound, eps, delta)
	return nil
}

// serve runs the probe daemon on a snapshot until SIGINT/SIGTERM: the
// listen address is printed first (parse it when -addr ends in :0), and
// shutdown drains in-flight probes before the snapshot is unmapped.
func serve(stdout io.Writer, addr string, cfg server.Config) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if dropped := s.Recovered(); dropped > 0 {
		fmt.Fprintf(stdout, "recovered %s: dropped %d torn journal bytes\n", cfg.SnapshotPath, dropped)
	}
	return serveUntilSignal(ln, s.Handler())
}

// serveHandler is the listen half of serve for the cluster roles, which
// build their own handler: print the bound address, then serve until
// SIGINT/SIGTERM.
func serveHandler(stdout io.Writer, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	return serveUntilSignal(ln, h)
}

func serveUntilSignal(ln net.Listener, h http.Handler) error {
	httpSrv := &http.Server{Handler: h}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func usageError() error {
	return fmt.Errorf("usage: repairctl <build|apply|compact|serve|worker|coordinate|total|blocks|count|decide|freq|approx|rank|analyze|shard|merge> -db FILE|- [-query Q] [flags]")
}

package main

import "testing"

// The serving kernels double as ordinary go-test benchmarks so the
// ProbeCache gate's two sides can be measured in isolation
// (go test ./cmd/cqabench -bench 'Probe|Admission') without a full
// cqabench -json run.

func benchKernel(b *testing.B, name string) {
	for _, k := range kernelBenchmarks() {
		if k.name == name {
			k.fn(b)
			return
		}
	}
	b.Fatalf("no kernel %s", name)
}

func BenchmarkProbeThroughput(b *testing.B)   { benchKernel(b, "ProbeThroughput") }
func BenchmarkProbeColdRepeat(b *testing.B)   { benchKernel(b, "ProbeColdRepeat") }
func BenchmarkProbeMixed(b *testing.B)        { benchKernel(b, "ProbeMixed") }
func BenchmarkAdmissionOverhead(b *testing.B) { benchKernel(b, "AdmissionOverhead") }

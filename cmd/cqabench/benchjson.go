package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"repaircount/internal/cluster"
	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/server"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// This file implements `cqabench -json`: it times the hot algorithmic
// kernels (the same workloads as the go-test benchmarks of the repository
// root) via testing.Benchmark and writes the results as BENCH_<n>.json,
// picking the next free n in the current directory, so the performance
// trajectory of the interned-ID substrate is tracked across PRs.

type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type benchReport struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// newServeBench writes the MultiComponent(512, 16, 4) snapshot and starts
// a real probe daemon over it behind httptest, returning the base URL and
// the workload's partition disjunction. The instance is deliberately wide
// (512 components of 16 blocks, 4^8192 total repairs): every uncached
// probe re-prices admission over all components and re-renders the
// ~5000-digit count string, the fixed per-probe costs the shared probe
// cache elides.
// cacheEntries follows server.Config: 0 selects the default bound, < 0
// disables the shared cache (the ProbeColdRepeat side of the ProbeCache
// gate). Workers is pinned to 1 so both sides measure one warm slot's
// steady state rather than rotating probes across cold per-slot caches.
func newServeBench(b *testing.B, cacheEntries int) (string, string) {
	db, ks, q := workload.MultiComponent(512, 16, 4)
	dir, err := os.MkdirTemp("", "cqabench-serve")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "serve.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		b.Fatal(err)
	}
	s, err := server.New(server.Config{
		SnapshotPath: path,
		Workers:      1,
		ExactBudget:  1 << 44,
		CacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL, q.String()
}

// serveGet fetches one probe URL and fails the benchmark unless the
// daemon answered 200 with the expected serving mode.
func serveGet(b *testing.B, probe string, mode []byte) []byte {
	resp, err := http.Get(probe)
	if err != nil {
		b.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("probe: status %d err %v: %s", resp.StatusCode, err, body)
	}
	if !bytes.Contains(body, mode) {
		b.Fatalf("probe: want %s, got %s", mode, body)
	}
	return body
}

func kernelBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	employee := func(n int) (*relational.Database, *relational.KeySet, query.Formula) {
		rng := rand.New(rand.NewPCG(11, uint64(n)))
		db, ks := workload.Employee(rng, n, 5, 0.4)
		return db, ks, workload.SameDeptQuery(1, 2)
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BlocksDecomposition", func(b *testing.B) {
			db, ks, _ := employee(2000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := relational.Blocks(db, ks); len(got) == 0 {
					b.Fatal("no blocks")
				}
			}
		}},
		{"DecisionLemma35", func(b *testing.B) {
			db, ks, q := employee(2000)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.HasRepairEntailing()
			}
		}},
		{"HomomorphismSearch", func(b *testing.B) {
			db, ks, q := employee(1000)
			in := repairs.MustInstance(db, ks, q)
			cq := in.UCQ.Disjuncts[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.HasConsistentHom(cq, in.Idx, ks)
			}
		}},
		{"FPRASSample", func(b *testing.B) {
			db, ks, q := employee(500)
			in := repairs.MustInstance(db, ks, q)
			c, err := in.Compactor()
			if err != nil {
				b.Fatal(err)
			}
			member := c.MemberFunc()
			rng := rand.New(rand.NewPCG(15, 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SampleOnce(c.Doms, member, rng)
			}
		}},
		{"FPRASParallel20k", func(b *testing.B) {
			db, ks, q := employee(500)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.ApxParallelWithSamples(20_000, 0, 42); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactEnum", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(8, 2, 2)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.CountEnumUCQ(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactFactorized", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(8, 2, 2)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.ResetComponentMemo() // measure enumeration, not the memo hit
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactGrayIEHeavy", func(b *testing.B) {
			// Forced Gray walk on the ie-heavy regime at the largest feasible
			// size: one 20-block component (2^20 states) with 4 boxes. This
			// is the slow side of the PlannedIE gate — the work the planner
			// avoids by choosing component-local inclusion–exclusion.
			db, ks, q := workload.IEHeavy(1, 20, 4)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountGray(1<<21, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.ResetComponentMemo() // measure the walk, not the memo hit
				if _, err := in.CountGray(1<<21, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactPlannedIE", func(b *testing.B) {
			// The planner on the same ie-heavy instance: it assigns
			// component-local IE (≤ 2^4 − 1 subset nodes) instead of the
			// 2^20-state walk. The PlannedIE gate requires this to beat
			// ExactGrayIEHeavy by ≥ 10×.
			db, ks, q := workload.IEHeavy(1, 20, 4)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.ResetComponentMemo() // measure the IE pass, not the memo hit
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PlanSelection", func(b *testing.B) {
			// End-to-end plan construction on a cold instance: block
			// decomposition, index build, box extraction and the per-component
			// cost model — the fixed overhead the planner adds before any
			// counting starts.
			db, ks, q := workload.IEHeavy(4, 16, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := repairs.MustInstance(db, ks, q)
				p, err := in.ExplainPlan(repairs.EngineAuto)
				if err != nil || len(p.Components) != 4 {
					b.Fatal("bad plan", err)
				}
			}
		}},
		{"ParseIndexMultiComp", func(b *testing.B) {
			// Instance-ready time over the text path: parse the codec,
			// decompose the conflict blocks, build the evaluation index —
			// the work NewInstance performs on every cold start.
			db, ks, _ := workload.MultiComponent(256, 8, 4)
			var text bytes.Buffer
			if err := relational.WriteInstance(&text, db, ks); err != nil {
				b.Fatal(err)
			}
			data := text.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pdb, pks, err := relational.ParseInstance(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if blocks := relational.Blocks(pdb, pks); len(blocks) == 0 {
					b.Fatal("no blocks")
				}
				if idx := eval.IndexDatabase(pdb); idx.Len() == 0 {
					b.Fatal("empty index")
				}
			}
		}},
		{"SnapshotLoadMultiComp", func(b *testing.B) {
			// Instance-ready time over the snapshot path: mmap, validate,
			// alias the arenas — same database, block sequence and index
			// as ParseIndexMultiComp, no parsing and O(1) allocations.
			db, ks, _ := workload.MultiComponent(256, 8, 4)
			dir, err := os.MkdirTemp("", "cqabench")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { os.RemoveAll(dir) })
			path := filepath.Join(dir, "bench.cqs")
			if err := store.WriteFile(path, db, ks); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := store.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := snap.Database(); err != nil {
					b.Fatal(err)
				}
				if blocks, err := snap.Blocks(); err != nil || len(blocks) == 0 {
					b.Fatal("no blocks", err)
				}
				idx, err := snap.Index()
				if err != nil || idx.Len() == 0 {
					b.Fatal("empty index", err)
				}
				snap.Close()
			}
		}},
		{"FactorizedDeltaStep64k", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(1, 16, 2)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.ResetComponentMemo() // measure the Gray walk, not the memo hit
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"IncrementalApply", func(b *testing.B) {
			// One delta through the whole maintained substrate: database
			// tombstone/append, block splice, index posting/bucket/domain
			// maintenance. Alternates insert and delete of one fact so the
			// instance stays bounded.
			db, ks, q := workload.MultiComponent(64, 4, 4)
			in := repairs.MustInstance(db, ks, q)
			f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", "uvX"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := repairs.Insert(f)
				if i%2 == 1 {
					d = repairs.Delete(f)
				}
				if _, err := in.Apply(d); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"RecountAfterDelta", func(b *testing.B) {
			// Exact recount after one delta on a warm multi-component
			// instance: the structural memo keeps the 63 untouched
			// components' counts, so only component C0 re-enumerates. This
			// is the fast side of the IncrementalRecount gate; the slow side
			// (RecountRebuildMultiComp) rebuilds the same instance from
			// text.
			db, ks, q := workload.MultiComponent(64, 4, 4)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", "uvX"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := repairs.Insert(f)
				if i%2 == 1 {
					d = repairs.Delete(f)
				}
				if _, err := in.Apply(d); err != nil {
					b.Fatal(err)
				}
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CompileRecount", func(b *testing.B) {
			// Post-delta recount on the circuit engine. Each op grows one
			// block of a fresh warm instance by six facts whose values sort
			// after every query constant, recounting after each insert: the
			// d-DNNF circuit of a component depends only on its box tables,
			// not its block sizes, so every recount reuses the one cached
			// circuit and pays a single circuit-linear evaluation. Both
			// structural memos (the per-component count memo and the circuit
			// memo) see exactly the same delta stream as the Gray side — the
			// circuit survives size growth, the Gray walk cannot. The fast
			// side of the CompileReuse gate.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, ks, q := workload.MultiComponent(2, 10, 4)
				in := repairs.MustInstance(db, ks, q)
				if _, err := in.CountCompile(0, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for k := 0; k < 6; k++ {
					f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", relational.Const(fmt.Sprintf("z%03d", k))}}
					if _, err := in.Apply(repairs.Insert(f)); err != nil {
						b.Fatal(err)
					}
					if _, err := in.CountCompile(0, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"CompileRecountGray", func(b *testing.B) {
			// The identical growth stream on the Gray walk: each size-only
			// insert yields a component shape (block-size vector) the
			// structural count memo has never seen, so every recount
			// re-enumerates the touched component's grown 4^9*(4+k)-state
			// choice space instead of evaluating a cached circuit. The slow
			// side of the CompileReuse gate.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, ks, q := workload.MultiComponent(2, 10, 4)
				in := repairs.MustInstance(db, ks, q)
				if _, err := in.CountGray(0, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for k := 0; k < 6; k++ {
					f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", relational.Const(fmt.Sprintf("z%03d", k))}}
					if _, err := in.Apply(repairs.Insert(f)); err != nil {
						b.Fatal(err)
					}
					if _, err := in.CountGray(0, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"WeightedCount", func(b *testing.B) {
			// Repeated weighted counting over warm circuits: each iteration
			// is one interval-arithmetic bottom-up pass per component plus
			// the factorized assembly — the /v1/prob steady state.
			db, ks, q := workload.MultiComponent(8, 8, 4)
			in := repairs.MustInstance(db, ks, q)
			w := make([]float64, in.Idx.NumFacts())
			for i := range w {
				w[i] = float64(1+i%16) / 16
			}
			if _, err := in.CountWeighted(w); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.CountWeighted(w); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ShardCount1", func(b *testing.B) {
			// Single-shard baseline of the ShardScaling gate: the whole
			// instance is one shard, so one worker's partial recompute is the
			// entire count. Same instance and code path as ShardCount8.
			db, ks, q := workload.MultiComponent(8, 16, 2)
			in := repairs.MustInstance(db, ks, q)
			plan, err := in.PlanShards(1)
			if err != nil {
				b.Fatal(err)
			}
			subs, err := in.ShardInstances(plan)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := subs[0].CountNonEntailment(0, 1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				subs[0].ResetComponentMemo() // a shard executor starts cold
				p, err := subs[0].CountNonEntailment(0, 1)
				if err != nil {
					b.Fatal(err)
				}
				if n := repairs.CombinePartials(plan.Outer, []*repairs.Partial{p}); n.Sign() == 0 {
					b.Fatal("zero count")
				}
			}
		}},
		{"ShardCount8", func(b *testing.B) {
			// Fleet critical path at 8 shards on the same instance: shard
			// workers run independently, so the slowest (heaviest-cost)
			// shard's recompute plus the merge bounds the fleet wall-clock.
			// The other seven partials are precomputed in setup; the heavy
			// shard recounts cold every iteration. The ShardScaling gate
			// requires ShardCount1/ShardCount8 ≥ 4×.
			db, ks, q := workload.MultiComponent(8, 16, 2)
			in := repairs.MustInstance(db, ks, q)
			plan, err := in.PlanShards(8)
			if err != nil {
				b.Fatal(err)
			}
			subs, err := in.ShardInstances(plan)
			if err != nil {
				b.Fatal(err)
			}
			heavy := 0
			parts := make([]*repairs.Partial, len(subs))
			for s := range subs {
				if parts[s], err = subs[s].CountNonEntailment(0, 1); err != nil {
					b.Fatal(err)
				}
				if plan.Cost[s] > plan.Cost[heavy] {
					heavy = s
				}
			}
			want, err := in.CountFactorized(0)
			if err != nil {
				b.Fatal(err)
			}
			if got := repairs.CombinePartials(plan.Outer, parts); got.Cmp(want) != 0 {
				b.Fatalf("sharded %s, direct %s", got, want)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				subs[heavy].ResetComponentMemo() // a shard executor starts cold
				p, err := subs[heavy].CountNonEntailment(0, 1)
				if err != nil {
					b.Fatal(err)
				}
				parts[heavy] = p
				if n := repairs.CombinePartials(plan.Outer, parts); n.Cmp(want) != 0 {
					b.Fatal("merge drift")
				}
			}
		}},
		{"ClusterCount8", func(b *testing.B) {
			// The fleet critical path of ShardCount8 over real HTTP: eight
			// workers hold the same 8-shard cut, and every iteration is one
			// coordinator probe — fan-out, per-partial digest/epoch/applied
			// verification, and the big-int merge. Worker 0 recounts its
			// shard cold on every partial (ColdCounts), mirroring the cold
			// heavy shard of ShardCount8; the other seven answer from their
			// component memo, as a quiet fleet would. The ClusterOverhead
			// gate requires the distribution tax (HTTP, encode/decode,
			// verification) to stay within 2x of the in-process path.
			db, ks, q := workload.MultiComponent(8, 16, 2)
			dir, err := os.MkdirTemp("", "cqabench-cluster")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { os.RemoveAll(dir) })
			snapPath := filepath.Join(dir, "base.cqs")
			if err := store.WriteFile(snapPath, db, ks); err != nil {
				b.Fatal(err)
			}
			peers := make([]string, 8)
			for s := range peers {
				wdir := filepath.Join(dir, fmt.Sprintf("w%d", s))
				if err := os.MkdirAll(wdir, 0o755); err != nil {
					b.Fatal(err)
				}
				w, err := cluster.NewWorker(cluster.WorkerConfig{Dir: wdir, ColdCounts: s == 0})
				if err != nil {
					b.Fatal(err)
				}
				ws := httptest.NewServer(w.Handler())
				b.Cleanup(func() { ws.Close(); w.Close() })
				peers[s] = ws.URL
			}
			qs := q.String()
			co, err := cluster.New(cluster.Config{
				SnapshotPath: snapPath,
				Query:        qs,
				Peers:        peers,
				ShardDir:     filepath.Join(dir, "shards"),
			})
			if err != nil {
				b.Fatal(err)
			}
			cts := httptest.NewServer(co.Handler())
			b.Cleanup(func() { cts.Close(); co.Close() })
			in := repairs.MustInstance(db, ks, q)
			want, err := in.CountFactorized(0)
			if err != nil {
				b.Fatal(err)
			}
			probe := cts.URL + "/v1/count?format=json&q=" + url.QueryEscape(qs)
			wantCount := []byte(fmt.Sprintf(`"count":"%s"`, want))
			fanned := []byte(`"engine":"fanout"`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Get(probe)
				if err != nil {
					b.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					b.Fatalf("probe: status %d err %v: %s", resp.StatusCode, err, body)
				}
				if !bytes.Contains(body, fanned) || !bytes.Contains(body, wantCount) {
					b.Fatalf("probe: want fanned count %s, got %s", want, body)
				}
			}
		}},
		{"ProbeThroughput", func(b *testing.B) {
			// The hot serve path: one exact count probe repeated against a
			// daemon with the shared probe cache on. After the warm-up
			// probe the compiled counter, the priced admission and the
			// rendered result are all memoized under (query, epoch,
			// version), so each iteration is HTTP plus a cache hit. This
			// is the fast side of the ProbeCache gate.
			base, _ := newServeBench(b, 0)
			probe := base + "/v1/count?format=json&q=" + url.QueryEscape("C0('k0','v0')")
			exact := []byte(`"mode":"exact"`)
			serveGet(b, probe, exact)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveGet(b, probe, exact)
			}
		}},
		{"ProbeColdRepeat", func(b *testing.B) {
			// The identical probe loop with the shared cache disabled
			// (-cache-entries 0 in repairctl terms): the slot still keeps
			// its compiled counter, but every probe re-prices admission
			// over all 256 components and re-renders the thousand-digit
			// count string. The slow side of the ProbeCache gate.
			base, _ := newServeBench(b, -1)
			probe := base + "/v1/count?format=json&q=" + url.QueryEscape("C0('k0','v0')")
			exact := []byte(`"mode":"exact"`)
			serveGet(b, probe, exact)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveGet(b, probe, exact)
			}
		}},
		{"ProbeMixed", func(b *testing.B) {
			// A probe stream over a 16-query working set, round-robin,
			// cache on: the steady state of a daemon serving a small hot
			// set, every query a cache hit after its first probe. Reports
			// per-probe latency quantiles as p50-ns/op and p99-ns/op.
			base, _ := newServeBench(b, 0)
			probes := make([]string, 16)
			exact := []byte(`"mode":"exact"`)
			for i := range probes {
				qs := fmt.Sprintf("C%d('k%d','v0')", i%8, i/8)
				probes[i] = base + "/v1/count?format=json&q=" + url.QueryEscape(qs)
			}
			for _, p := range probes {
				serveGet(b, p, exact)
			}
			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				serveGet(b, probes[i%len(probes)], exact)
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[(len(lat)-1)*50/100].Nanoseconds()), "p50-ns/op")
			b.ReportMetric(float64(lat[(len(lat)-1)*99/100].Nanoseconds()), "p99-ns/op")
		}},
		{"AdmissionOverhead", func(b *testing.B) {
			// The admission ladder alone: /v1/explain prices the full
			// partition disjunction (256 components through the plan cost
			// model) without running the count. With the cache on, the
			// priced admission is memoized per (query, epoch, version), so
			// this measures the floor a probe pays before any counting.
			base, q := newServeBench(b, 0)
			probe := base + "/v1/explain?q=" + url.QueryEscape(q)
			mode := []byte(`"admission":"exact"`)
			serveGet(b, probe, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				serveGet(b, probe, mode)
			}
		}},
		{"RecountRebuildMultiComp", func(b *testing.B) {
			// Rebuild-from-scratch baseline for RecountAfterDelta: parse the
			// text instance, decompose blocks, build the index and count —
			// the cost a build-once pipeline pays for every delta.
			db, ks, q := workload.MultiComponent(64, 4, 4)
			var text bytes.Buffer
			if err := relational.WriteInstance(&text, db, ks); err != nil {
				b.Fatal(err)
			}
			data := text.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pdb, pks, err := relational.ParseInstance(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				in := repairs.MustInstance(pdb, pks, q)
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// speedupGate is one host-speed-independent regression gate: the ratio
// slow/fast must clear floor× and must not halve relative to the
// committed baseline snapshot.
type speedupGate struct {
	label      string
	slow, fast string // kernel names; fast is the engine under guard
	floor      float64
}

// gates lists the guarded engines: the factorized exact counter, the
// exact-counting planner (planned component-local IE must beat the forced
// Gray walk on the ie-heavy workload), the snapshot loader, the
// incremental recount path (recount-after-delta must beat
// rebuild-from-scratch), sharded scale-out (the 8-shard fleet critical
// path must beat the single-shard count ≥ 4× — near-linear once the merge
// and the bin-packing imbalance are paid), and the distributed-serving
// overhead (one coordinator probe over a real HTTP fleet must stay within
// 2× of the in-process 8-shard critical path, i.e. ShardCount8 /
// ClusterCount8 ≥ 0.5 — the fan-out, wire codec and verification ladder
// must not dominate the counting), the serve-path probe cache (a hot
// repeated probe against a cache-enabled daemon must beat the identical
// loop with the shared cache disabled ≥ 10× — admission pricing and
// result rendering must be memoized, not recomputed, on the hot path),
// and circuit reuse (a post-delta recount through the cached d-DNNF
// circuits must beat the same delta stream on the Gray walk ≥ 10× —
// size-only deltas must re-evaluate circuits, never re-enumerate the
// choice space).
var gates = []speedupGate{
	{label: "ExactFactorized", slow: "ExactEnum", fast: "ExactFactorized", floor: 10},
	{label: "PlannedIE", slow: "ExactGrayIEHeavy", fast: "ExactPlannedIE", floor: 10},
	{label: "SnapshotLoad", slow: "ParseIndexMultiComp", fast: "SnapshotLoadMultiComp", floor: 10},
	{label: "IncrementalRecount", slow: "RecountRebuildMultiComp", fast: "RecountAfterDelta", floor: 10},
	{label: "ShardScaling", slow: "ShardCount1", fast: "ShardCount8", floor: 4},
	{label: "ClusterOverhead", slow: "ShardCount8", fast: "ClusterCount8", floor: 0.5},
	{label: "ProbeCache", slow: "ProbeColdRepeat", fast: "ProbeThroughput", floor: 10},
	{label: "CompileReuse", slow: "CompileRecountGray", fast: "CompileRecount", floor: 10},
}

// checkBaseline guards the hot engines against performance regressions
// with host-speed-independent ratios, comparing each gate's slow/fast
// kernel speedup against the committed snapshot and failing when a
// speedup halves or drops below its floor. Every failure names the
// breaching gate and the kernel(s) responsible, so a red CI run points at
// the engine to look at, not just the baseline file. A gate is skipped
// (not failed) when the baseline file predates its kernels.
func checkBaseline(report benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	kernelNs := func(r benchReport, name string) float64 {
		for _, b := range r.Benchmarks {
			if b.Name == name {
				return b.NsPerOp
			}
		}
		return 0
	}
	for _, g := range gates {
		den := kernelNs(report, g.fast)
		num := kernelNs(report, g.slow)
		if num == 0 || den == 0 {
			missing := g.fast
			if num == 0 {
				missing = g.slow
			}
			return fmt.Errorf("gate %s: this run is missing kernel %s", g.label, missing)
		}
		now := num / den
		if now < g.floor {
			return fmt.Errorf("gate %s breached by kernel %s: speedup %.1fx over %s is below the required %gx",
				g.label, g.fast, now, g.slow, g.floor)
		}
		bden, bnum := kernelNs(base, g.fast), kernelNs(base, g.slow)
		if bden == 0 || bnum == 0 {
			fmt.Printf("baseline ok: gate %s speedup %.1fx (kernels not in %s yet)\n", g.label, now, path)
			continue
		}
		snap := bnum / bden
		if now < snap/2 {
			return fmt.Errorf("gate %s breached by kernel %s: speedup %.1fx vs %.1fx in %s (> 2x regression over %s)",
				g.label, g.fast, now, snap, path, g.slow)
		}
		fmt.Printf("baseline ok: gate %s speedup %.1fx (snapshot %.1fx)\n", g.label, now, snap)
	}
	return nil
}

// runKernels times every kernel benchmark into a report.
func runKernels() benchReport {
	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, k := range kernelBenchmarks() {
		r := testing.Benchmark(k.fn)
		rec := benchRecord{
			Name:        k.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for name, v := range r.Extra {
				rec.Extra[name] = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	return report
}

// writeBenchJSON writes a kernel report as BENCH_<n>.json.
func writeBenchJSON(report benchReport) (string, error) {
	path, err := nextBenchPath()
	if err != nil {
		return "", err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// nextBenchPath returns BENCH_<n>.json for the smallest n ≥ 1 not yet
// present in the current directory.
func nextBenchPath() (string, error) {
	for n := 1; n < 10_000; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("cqabench: no free BENCH_<n>.json slot")
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

// This file implements `cqabench -json`: it times the hot algorithmic
// kernels (the same workloads as the go-test benchmarks of the repository
// root) via testing.Benchmark and writes the results as BENCH_<n>.json,
// picking the next free n in the current directory, so the performance
// trajectory of the interned-ID substrate is tracked across PRs.

type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func kernelBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	employee := func(n int) (*relational.Database, *relational.KeySet, query.Formula) {
		rng := rand.New(rand.NewPCG(11, uint64(n)))
		db, ks := workload.Employee(rng, n, 5, 0.4)
		return db, ks, workload.SameDeptQuery(1, 2)
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BlocksDecomposition", func(b *testing.B) {
			db, ks, _ := employee(2000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := relational.Blocks(db, ks); len(got) == 0 {
					b.Fatal("no blocks")
				}
			}
		}},
		{"DecisionLemma35", func(b *testing.B) {
			db, ks, q := employee(2000)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.HasRepairEntailing()
			}
		}},
		{"HomomorphismSearch", func(b *testing.B) {
			db, ks, q := employee(1000)
			in := repairs.MustInstance(db, ks, q)
			cq := in.UCQ.Disjuncts[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.HasConsistentHom(cq, in.Idx, ks)
			}
		}},
		{"FPRASSample", func(b *testing.B) {
			db, ks, q := employee(500)
			in := repairs.MustInstance(db, ks, q)
			c, err := in.Compactor()
			if err != nil {
				b.Fatal(err)
			}
			member := c.MemberFunc()
			rng := rand.New(rand.NewPCG(15, 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SampleOnce(c.Doms, member, rng)
			}
		}},
		{"FPRASParallel20k", func(b *testing.B) {
			db, ks, q := employee(500)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.ApxParallelWithSamples(20_000, 0, 42); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactEnum", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(8, 2, 2)
			in := repairs.MustInstance(db, ks, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.CountEnumUCQ(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ExactFactorized", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(8, 2, 2)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"FactorizedDeltaStep64k", func(b *testing.B) {
			db, ks, q := workload.MultiComponent(1, 16, 2)
			in := repairs.MustInstance(db, ks, q)
			if _, err := in.CountFactorized(0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.CountFactorized(0); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// checkBaseline guards the factorized counter against performance
// regressions: it compares the ExactEnum / ExactFactorized speedup of this
// run against the committed snapshot and fails when the speedup halves
// (i.e. the factorized counter regressed > 2× relative to the enumeration
// reference on the same host — a host-speed-independent measure) or drops
// below the 10× floor the engine is required to clear.
func checkBaseline(report benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	speedup := func(r benchReport, where string) (float64, error) {
		var enum, fact float64
		for _, b := range r.Benchmarks {
			switch b.Name {
			case "ExactEnum":
				enum = b.NsPerOp
			case "ExactFactorized":
				fact = b.NsPerOp
			}
		}
		if enum == 0 || fact == 0 {
			return 0, fmt.Errorf("%s is missing the ExactEnum/ExactFactorized benchmarks", where)
		}
		return enum / fact, nil
	}
	now, err := speedup(report, "this run")
	if err != nil {
		return err
	}
	snap, err := speedup(base, path)
	if err != nil {
		return err
	}
	if now < 10 {
		return fmt.Errorf("ExactFactorized speedup %.1fx over ExactEnum is below the required 10x", now)
	}
	if now < snap/2 {
		return fmt.Errorf("ExactFactorized regressed: speedup %.1fx vs %.1fx in %s (> 2x regression)", now, snap, path)
	}
	fmt.Printf("baseline ok: ExactFactorized speedup %.1fx (snapshot %.1fx)\n", now, snap)
	return nil
}

// runKernels times every kernel benchmark into a report.
func runKernels() benchReport {
	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, k := range kernelBenchmarks() {
		r := testing.Benchmark(k.fn)
		report.Benchmarks = append(report.Benchmarks, benchRecord{
			Name:        k.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return report
}

// writeBenchJSON writes a kernel report as BENCH_<n>.json.
func writeBenchJSON(report benchReport) (string, error) {
	path, err := nextBenchPath()
	if err != nil {
		return "", err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// nextBenchPath returns BENCH_<n>.json for the smallest n ≥ 1 not yet
// present in the current directory.
func nextBenchPath() (string, error) {
	for n := 1; n < 10_000; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("cqabench: no free BENCH_<n>.json slot")
}

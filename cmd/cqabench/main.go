// Command cqabench runs the reproduction's experiment suite (E01–E15, see
// DESIGN.md and EXPERIMENTS.md) and prints one table per experiment.
//
// Usage:
//
//	cqabench                  # run everything
//	cqabench -experiment E06  # one experiment
//	cqabench -quick           # smaller workloads
//	cqabench -seed 42         # deterministic tables
//	cqabench -json            # benchmark the hot kernels, write BENCH_<n>.json
//	cqabench -baseline BENCH_2.json   # fail if ExactFactorized regressed > 2x
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repaircount/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (e.g. E06); empty runs all")
		seed       = flag.Uint64("seed", 7, "random seed driving all workloads")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast pass")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut    = flag.Bool("json", false, "benchmark the hot kernels and write BENCH_<n>.json (next free n) in the current directory")
		baseline   = flag.String("baseline", "", "benchmark the hot kernels and fail if ExactFactorized regresses > 2x against this BENCH_<n>.json snapshot")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *jsonOut || *baseline != "" {
		report := runKernels()
		if *jsonOut {
			path, err := writeBenchJSON(report)
			if err != nil {
				fatal(err)
			}
			fmt.Println(path)
		}
		if *baseline != "" {
			if err := checkBaseline(report, *baseline); err != nil {
				fatal(err)
			}
		}
		return
	}
	p := experiments.Params{Seed: *seed, Quick: *quick}
	var tables []*experiments.Table
	if *experiment != "" {
		t, err := experiments.Run(*experiment, p)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	} else {
		var err error
		tables, err = experiments.RunAll(p)
		if err != nil {
			fatal(err)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Counting Database Repairs under Primary Keys Revisited — experiment run\n")
	fmt.Fprintf(&b, "# seed=%d quick=%v\n\n", *seed, *quick)
	for _, t := range tables {
		t.Render(&b)
	}
	fmt.Print(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqabench:", err)
	os.Exit(1)
}

package repaircount

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// writePartialForTest is what repairctl count -shard does: serialize one
// shard's partial bound to the manifest and shard snapshot digests.
func writePartialForTest(path string, set *ShardSet, shard int, snapshotDigest uint64, p *Partial) error {
	return store.WritePartialFile(path, &store.PartialFile{
		ManifestCRC: set.ManifestCRC,
		Shard:       shard,
		K:           len(set.Manifest.Shards),
		SnapshotCRC: snapshotDigest,
		Inner:       p.Inner,
		NonEnt:      p.NonEnt,
	})
}

// End-to-end sharding pipeline at the public API: snapshot → Shard →
// per-shard CountPartial → MergePartialFiles must reproduce the direct
// count bit-identically, and every staleness hatch must error.

func shardFixture(t *testing.T) (string, Formula) {
	t.Helper()
	db, ks, q := workload.SkewedComponents(5, 8, 1.0)
	path := filepath.Join(t.TempDir(), "base.cqs")
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, db, ks); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, q
}

func TestSnapshotShardPipeline(t *testing.T) {
	path, q := shardFixture(t)
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	dc, err := snap.Counter(q)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := dc.Count()
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 3, 8} {
		dir := filepath.Join(t.TempDir(), "shards")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		set, err := snap.Shard(q, k, dir)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(set.Paths) != k || len(set.Manifest.Shards) != k {
			t.Fatalf("k=%d: wrote %d shard paths, manifest lists %d", k, len(set.Paths), len(set.Manifest.Shards))
		}
		if set.Manifest.BaseCRC != snap.Digest() {
			t.Fatalf("k=%d: manifest base digest %#x, snapshot %#x", k, set.Manifest.BaseCRC, snap.Digest())
		}
		partials := make([]string, k)
		for s, shardPath := range set.Paths {
			sub, err := OpenSnapshot(shardPath)
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
			if sub.Digest() != set.Manifest.Shards[s].CRC {
				t.Fatalf("k=%d shard %d: digest %#x, manifest says %#x", k, s, sub.Digest(), set.Manifest.Shards[s].CRC)
			}
			c, err := sub.Counter(q)
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
			p, err := c.CountPartial(1)
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
			partials[s] = filepath.Join(dir, filepath.Base(shardPath)+".cqsp")
			if err := writePartialForTest(partials[s], set, s, sub.Digest(), p); err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
			sub.Close()
		}
		merged, err := MergePartialFiles(set.ManifestPath, partials...)
		if err != nil {
			t.Fatalf("k=%d: merge: %v", k, err)
		}
		if merged.Cmp(direct) != 0 {
			t.Fatalf("k=%d: merged %s, direct %s", k, merged, direct)
		}
		// The closed form pins both sides.
		if want := workload.SkewedComponentsCount(5, 8, 1.0); merged.Cmp(want) != 0 {
			t.Fatalf("k=%d: merged %s, closed form %s", k, merged, want)
		}

		// An incomplete set must error, never miscount.
		if k > 1 {
			if _, err := MergePartialFiles(set.ManifestPath, partials[:k-1]...); err == nil {
				t.Fatalf("k=%d: merge accepted %d of %d partials", k, k-1, k)
			}
		}
	}
}

// A journaled snapshot no longer equals its sealed base, so sharding must
// refuse it until compacted.
func TestShardRefusesJournaledSnapshot(t *testing.T) {
	path, q := shardFixture(t)
	if err := AppendJournal(path, Insert(NewFact("S0", "zz", "v0"))); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.NumJournalOps() == 0 {
		t.Fatal("journal op not visible")
	}
	if _, err := snap.Shard(q, 2, t.TempDir()); err == nil {
		t.Fatal("sharded a journaled snapshot")
	}
}

// In-process sharded counting at the Counter level agrees with Count for
// every k, including after deltas (the plan is rebuilt per count).
func TestCounterCountSharded(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 3, 2)
	c, err := NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 8} {
		got, err := c.CountSharded(k, 2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got.Cmp(direct) != 0 {
			t.Fatalf("k=%d: sharded %s, direct %s", k, got, direct)
		}
	}
	if _, err := c.Apply(Delete(NewFact("C0", "k0", "v0"))); err != nil {
		t.Fatal(err)
	}
	direct, _, err = c.Count()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CountSharded(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(direct) != 0 {
		t.Fatalf("after delta: sharded %s, direct %s", got, direct)
	}
}

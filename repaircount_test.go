package repaircount

import (
	"math/big"
	"os"
	"strings"
	"testing"
)

const exampleInstanceText = `
key Employee 1
Employee(1, Bob, HR)
Employee(1, Bob, IT)
Employee(2, Alice, IT)
Employee(2, Tim, IT)
`

func exampleCounter(t testing.TB) *Counter {
	t.Helper()
	db, keys, err := ParseInstanceString(exampleInstanceText)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := exampleCounter(t)
	if got := c.Total(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("Total = %s, want 4", got)
	}
	n, algo, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("Count = %s (%s), want 2", n, algo)
	}
	freq, err := c.RelativeFrequency()
	if err != nil {
		t.Fatal(err)
	}
	if freq.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("RelativeFrequency = %s, want 1/2", freq)
	}
	if !c.Decide() {
		t.Fatalf("Decide must be true")
	}
	if c.Keywidth() != 2 {
		t.Fatalf("Keywidth = %d, want 2", c.Keywidth())
	}
	if c.Fragment() != "CQ" {
		t.Fatalf("Fragment = %s, want CQ", c.Fragment())
	}
}

func TestApproximateOnExample(t *testing.T) {
	c := exampleCounter(t)
	est, err := c.Approximate(0.15, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	v := est.Float64()
	if v < 2*(1-0.15) || v > 2*(1+0.15) {
		t.Fatalf("estimate %.3f outside ε-band around 2", v)
	}
	// Reproducibility: same seed, same estimate.
	est2, err := c.Approximate(0.15, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value.Cmp(est2.Value) != 0 {
		t.Fatalf("same seed produced different estimates")
	}
	est3, err := c.ApproximateWithSamples(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if est3.Samples != 500 {
		t.Fatalf("explicit budget ignored: %d", est3.Samples)
	}
}

func TestBind(t *testing.T) {
	q, err := ParseQuery("exists n . Employee(1, n, d)")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Bind(q, "HR")
	if err != nil {
		t.Fatal(err)
	}
	db, keys, err := ParseInstanceString(exampleInstanceText)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(db, keys, bound)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the repairs keeping Employee(1,Bob,HR): 1 choice in block 1
	// times 2 free choices in block 2.
	if n.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("Count(d=HR) = %s, want 2", n)
	}
	if _, err := Bind(q, "a", "b"); err == nil {
		t.Fatalf("arity mismatch accepted by Bind")
	}
}

func TestCounterRejectsFreeVariables(t *testing.T) {
	db, keys, _ := ParseInstanceString(exampleInstanceText)
	q, _ := ParseQuery("Employee(1, n, d)")
	if _, err := NewCounter(db, keys, q); err == nil {
		t.Fatalf("free variables accepted")
	}
}

func TestParseInstanceReader(t *testing.T) {
	db, keys, err := ParseInstance(strings.NewReader(exampleInstanceText))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 || !keys.HasKey("Employee") {
		t.Fatalf("reader parse wrong: %d facts", db.Len())
	}
}

func TestProgrammaticConstruction(t *testing.T) {
	db, err := NewDatabase(
		NewFact("R", "1", "a"),
		NewFact("R", "1", "b"),
	)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("R(1, 'a')")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(db, Keys(map[string]int{"R": 1}), q)
	if err != nil {
		t.Fatal(err)
	}
	n, algo, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("Count = %s (%s), want 1", n, algo)
	}
	if algo != EngineSafePlan {
		t.Fatalf("ground single-atom query must take the safe plan, got %s", algo)
	}
}

// TestCountWithAndExplainPlan exercises the typed engine surface: every
// pinnable engine agrees with Count, and ExplainPlan reports the
// per-component assignment.
func TestCountWithAndExplainPlan(t *testing.T) {
	c := exampleCounter(t)
	want, algo, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	if algo != EngineFactorized {
		t.Fatalf("example instance counted by %s, want factorized", algo)
	}
	for _, engine := range []EngineKind{EngineAuto, EngineFactorized, EngineGray, EngineCompIE, EngineCompile, EngineIE, EngineEnum} {
		n, err := c.CountWith(engine)
		if err != nil {
			t.Fatalf("CountWith(%s): %v", engine, err)
		}
		if n.Cmp(want) != 0 {
			t.Fatalf("CountWith(%s) = %s, want %s", engine, n, want)
		}
	}
	if _, err := c.CountWith(EngineMasked); err == nil {
		t.Fatal("CountWith(EngineMasked) accepted (not a pinnable engine)")
	}
	p, err := c.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine != EngineFactorized || len(p.Components) == 0 {
		t.Fatalf("plan = %s, want factorized with components", p)
	}
	for i, cp := range p.Components {
		if cp.Engine != EngineGray && cp.Engine != EngineCompIE && cp.Engine != EngineCompile {
			t.Fatalf("component %d engine = %s", i, cp.Engine)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("ParseEngine accepted an unknown name")
	}
}

// TestCounterApply exercises the public incremental-maintenance surface:
// deltas through a counter keep every count bit-identical to a counter
// built from scratch over the mutated facts.
func TestCounterApply(t *testing.T) {
	c := exampleCounter(t)
	if got := c.Version(); got != 0 {
		t.Fatalf("fresh counter version = %d", got)
	}
	before, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Apply(
		Insert(NewFact("Employee", "2", "Ann", "HR")),
		Delete(NewFact("Employee", "1", "Bob", "IT")),
	)
	if err != nil || n != 2 {
		t.Fatalf("Apply: n=%d err=%v", n, err)
	}
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2", c.Version())
	}
	after, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cmp(before) == 0 {
		t.Fatal("deltas did not change the count")
	}
	// Ground truth: rebuild from scratch over the mutated instance.
	db, keys, err := ParseInstanceString(`
key Employee 1
Employee(1, Bob, HR)
Employee(2, Alice, IT)
Employee(2, Ann, HR)
Employee(2, Tim, IT)
`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	fresh, err := NewCounter(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cmp(want) != 0 {
		t.Fatalf("incremental count %s, rebuilt %s", after, want)
	}
	if ft, lt := fresh.Total(), c.Total(); ft.Cmp(lt) != 0 {
		t.Fatalf("incremental total %s, rebuilt %s", lt, ft)
	}
	fc, err := c.CountFactorized()
	if err != nil || fc.Cmp(want) != 0 {
		t.Fatalf("factorized after deltas = %v (%v), want %s", fc, err, want)
	}
	le, err := c.ApproximateParallel(0.2, 0.1, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	re, err := fresh.ApproximateParallel(0.2, 0.1, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if le.Hits != re.Hits || le.Value.Cmp(re.Value) != 0 {
		t.Fatalf("incremental FPRAS %v (%d hits), rebuilt %v (%d hits)", le.Value, le.Hits, re.Value, re.Hits)
	}
}

// TestSnapshotApplyAndJournal exercises Snapshot.Apply, shared substrates
// across counters, AppendJournal and CompactSnapshot.
func TestSnapshotApplyAndJournal(t *testing.T) {
	db, keys, err := ParseInstanceString(exampleInstanceText)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/inst.cqs"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(f, db, keys); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	c1, err := snap.Counter(q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c1.CountFactorized()
	if err != nil {
		t.Fatal(err)
	}
	// Apply through the snapshot: a sibling counter built before the delta
	// must observe it on its next count. (Carl-HR gives Employee 2 a
	// non-IT choice, changing #CQA from 2 to 3.)
	if n, err := snap.Apply(Insert(NewFact("Employee", "2", "Carl", "HR"))); err != nil || n != 1 {
		t.Fatalf("Snapshot.Apply: n=%d err=%v", n, err)
	}
	if snap.Version() != 1 {
		t.Fatalf("snapshot version = %d, want 1", snap.Version())
	}
	after, err := c1.CountFactorized()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cmp(before) == 0 {
		t.Fatal("sibling counter did not observe the snapshot delta")
	}
	c2, err := snap.Counter(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c2.CountFactorized()
	if err != nil {
		t.Fatal(err)
	}
	if again.Cmp(after) != 0 {
		t.Fatalf("new counter sees %s, sibling sees %s", again, after)
	}
	snap.Close()

	// Persist the same delta as a journal, reload, compact: all equal.
	if err := AppendJournal(path, Insert(NewFact("Employee", "2", "Carl", "HR"))); err != nil {
		t.Fatal(err)
	}
	compacted := dir + "/compacted.cqs"
	if err := CompactSnapshot(path, compacted); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, compacted} {
		s, err := OpenSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Counter(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.CountFactorized()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(after) != 0 {
			t.Fatalf("%s: count %s, want %s", p, got, after)
		}
		s.Close()
	}
}

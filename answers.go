package repaircount

import (
	"fmt"
	"math/big"
	"sort"

	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
)

// RankedAnswer is one candidate answer tuple with its repair support.
type RankedAnswer struct {
	// Tuple binds the query's free variables in sorted name order.
	Tuple []Const
	// Count is the number of repairs entailing the bound query.
	Count *big.Int
	// Frequency is Count / |rep(D,Σ)|, the tuple's relative frequency
	// (paper §1.1).
	Frequency *big.Rat
}

// RankAnswers evaluates a non-Boolean existential positive query under the
// relative-frequency semantics motivating the paper: every candidate tuple
// is scored by the fraction of repairs entailing it, and candidates are
// returned sorted by decreasing frequency (ties broken lexicographically).
// Tuples entailed by no repair are omitted.
//
// Candidates are the answers over the full (inconsistent) database:
// existential positive queries are monotone, so an answer in any repair
// D' ⊆ D is an answer in D. Arbitrary FO queries are rejected — their
// possible answers need not appear in Q(D), and Theorem 3.3 puts exact
// counting for them at #P-completeness anyway.
func RankAnswers(db *Database, keys *KeySet, q Formula) ([]RankedAnswer, error) {
	return rankAnswers(db, keys, q, nil, nil)
}

// rankAnswers scores the candidates over one shared block sequence and
// index (computed from db when nil): the per-tuple instances differ only
// in their bound query, so the derived structures are hoisted out of the
// loop — and a loaded snapshot passes its preassembled ones.
func rankAnswers(db *Database, keys *KeySet, q Formula, blocks []relational.Block, idx *eval.Index) ([]RankedAnswer, error) {
	if !query.IsExistentialPositive(q) {
		return nil, fmt.Errorf("repaircount: RankAnswers needs an existential positive query (monotone candidate extraction); got %s — bind tuples manually for FO", query.Classify(q))
	}
	free := query.FreeVars(q)
	if len(free) == 0 {
		return nil, fmt.Errorf("repaircount: query is Boolean; use NewCounter directly")
	}
	if idx == nil {
		idx = eval.IndexDatabase(db)
	}
	if blocks == nil {
		blocks = relational.Blocks(db, keys)
	}
	candidates := eval.Answers(q, idx)
	var out []RankedAnswer
	var total *big.Int
	for _, tuple := range candidates {
		binding := make(map[query.Var]Const, len(free))
		for i, v := range free {
			binding[v] = tuple[i]
		}
		bound := query.Substitute(q, binding)
		inst, err := repairs.NewPreparedInstance(db, keys, bound, blocks, idx)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = inst.TotalRepairs()
		}
		n, _, err := inst.CountExact()
		if err != nil {
			return nil, err
		}
		if n.Sign() == 0 {
			continue
		}
		out = append(out, RankedAnswer{
			Tuple:     tuple,
			Count:     n,
			Frequency: new(big.Rat).SetFrac(n, total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Frequency.Cmp(out[j].Frequency); c != 0 {
			return c > 0
		}
		return lessTuple(out[i].Tuple, out[j].Tuple)
	})
	return out, nil
}

func lessTuple(a, b []Const) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CertainAnswers returns the tuples entailed by every repair (frequency 1)
// — the classical consistent-answer semantics of Arenas, Bertossi &
// Chomicki that the paper's counting semantics refines.
func CertainAnswers(db *Database, keys *KeySet, q Formula) ([][]Const, error) {
	ranked, err := RankAnswers(db, keys, q)
	if err != nil {
		return nil, err
	}
	var out [][]Const
	one := big.NewRat(1, 1)
	for _, r := range ranked {
		if r.Frequency.Cmp(one) == 0 {
			out = append(out, r.Tuple)
		}
	}
	return out, nil
}

// PossibleAnswers returns the tuples entailed by at least one repair
// (frequency > 0).
func PossibleAnswers(db *Database, keys *KeySet, q Formula) ([][]Const, error) {
	ranked, err := RankAnswers(db, keys, q)
	if err != nil {
		return nil, err
	}
	out := make([][]Const, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, r.Tuple)
	}
	return out, nil
}

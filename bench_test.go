package repaircount

// Benchmark harness: one benchmark per experiment of the reproduction's
// suite (E01–E15, see DESIGN.md §4 and EXPERIMENTS.md), each timing the
// same code path that cmd/cqabench uses to regenerate the corresponding
// table, plus micro-benchmarks for the hot algorithmic kernels (block
// decomposition, homomorphism search, union-of-boxes counting, the FPRAS
// sampler, the NTT simulator).
//
// Regenerate every table with:   go run ./cmd/cqabench
// Time everything with:          go test -bench=. -benchmem

import (
	"math/big"
	"math/rand/v2"
	"os"
	"testing"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/experiments"
	"repaircount/internal/ntt"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

// benchExperiment drives one experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	p := experiments.Params{Seed: 7, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE01ExampleOneOne(b *testing.B)     { benchExperiment(b, "E01") }
func BenchmarkE02DecisionVsExact(b *testing.B)   { benchExperiment(b, "E02") }
func BenchmarkE03NTTSpan(b *testing.B)           { benchExperiment(b, "E03") }
func BenchmarkE04CompactorUnfold(b *testing.B)   { benchExperiment(b, "E04") }
func BenchmarkE05HardnessReduction(b *testing.B) { benchExperiment(b, "E05") }
func BenchmarkE06FPRASAccuracy(b *testing.B)     { benchExperiment(b, "E06") }
func BenchmarkE07SampleComplexity(b *testing.B)  { benchExperiment(b, "E07") }
func BenchmarkE08FPRASComparison(b *testing.B)   { benchExperiment(b, "E08") }
func BenchmarkE09SATReduction(b *testing.B)      { benchExperiment(b, "E09") }
func BenchmarkE10LambdaProblems(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11KeywidthOne(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12SpanLL(b *testing.B)            { benchExperiment(b, "E12") }
func BenchmarkE13GraphProblems(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14SafePlan(b *testing.B)          { benchExperiment(b, "E14") }
func BenchmarkE15ProbDBReduction(b *testing.B)   { benchExperiment(b, "E15") }

// --- micro-benchmarks on the algorithmic kernels ---

func employeeWorkload(b *testing.B, n int) (*relational.Database, *relational.KeySet, query.Formula) {
	b.Helper()
	rng := rand.New(rand.NewPCG(11, uint64(n)))
	db, ks := workload.Employee(rng, n, 5, 0.4)
	return db, ks, workload.SameDeptQuery(1, 2)
}

func BenchmarkBlocksDecomposition(b *testing.B) {
	db, ks, _ := employeeWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := relational.Blocks(db, ks); len(got) == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkTotalRepairs(b *testing.B) {
	db, ks, _ := employeeWorkload(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if relational.NumRepairs(db, ks).Sign() <= 0 {
			b.Fatal("bad total")
		}
	}
}

func BenchmarkDecisionLemma35(b *testing.B) {
	db, ks, q := employeeWorkload(b, 2000)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.HasRepairEntailing()
	}
}

func BenchmarkCertificateEnumeration(b *testing.B) {
	db, ks, q := employeeWorkload(b, 500)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range in.Certificates() {
			n++
		}
	}
}

func BenchmarkCountIE(b *testing.B) {
	db, ks, q := employeeWorkload(b, 200)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CountIE(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSafePlanJoin(b *testing.B) {
	rng := rand.New(rand.NewPCG(13, 14))
	db, ks, err := workload.Generate(rng, []workload.RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 128, BlockSizes: workload.Fixed{N: 2}, NumValues: 3},
		{Pred: "S", KeyWidth: 1, Arity: 2, NumBlocks: 128, BlockSizes: workload.Fixed{N: 2}, NumValues: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse("exists x, y, z . (R(x, y) & S(x, z))")
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := in.CountSafePlan(); !ok {
			b.Fatal("unsafe")
		}
	}
}

// BenchmarkExactEnum / BenchmarkExactFactorized count the same structured
// instance — 8 independent components of 2 blocks × 2 facts, a 2^16 repair
// space — by plain enumeration (one fresh index per repair) and by the
// factorized engine (Σ_c per-component Gray-code spaces with
// delta-maintained match state: 32 inner steps total). The ratio is the
// headline speedup of the factorized counter and is gated in CI via
// cqabench -baseline.
func BenchmarkExactEnum(b *testing.B) {
	db, ks, q := workload.MultiComponent(8, 2, 2)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CountEnumUCQ(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactFactorized(b *testing.B) {
	db, ks, q := workload.MultiComponent(8, 2, 2)
	in := repairs.MustInstance(db, ks, q)
	if _, err := in.CountFactorized(0); err != nil { // warm the memoized factorization
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetComponentMemo() // measure enumeration, not the memo hit
		if _, err := in.CountFactorized(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactGrayIEHeavy / BenchmarkExactPlannedIE count the same
// ie-heavy instance — one 20-block component (2^20 states) with 4 boxes —
// with the Gray walk forced and with the planner, which assigns
// component-local inclusion–exclusion (≤ 15 subset nodes). The ratio is
// the headline speedup of the exact-counting planner and is gated in CI
// via cqabench -baseline (gate PlannedIE).
func BenchmarkExactGrayIEHeavy(b *testing.B) {
	db, ks, q := workload.IEHeavy(1, 20, 4)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetComponentMemo() // measure the walk, not the memo hit
		if _, err := in.CountGray(1<<21, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactPlannedIE(b *testing.B) {
	db, ks, q := workload.IEHeavy(1, 20, 4)
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetComponentMemo() // measure the IE pass, not the memo hit
		if _, err := in.CountFactorized(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanSelection measures end-to-end plan construction on a cold
// instance: block decomposition, index build, box extraction and the
// per-component cost model.
func BenchmarkPlanSelection(b *testing.B) {
	db, ks, q := workload.IEHeavy(4, 16, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := repairs.MustInstance(db, ks, q)
		if _, err := in.ExplainPlan(repairs.EngineAuto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFactorizedDeltaStep isolates the inner enumeration loop: one
// component of 16 size-2 blocks is a 65536-state Gray walk per op, so the
// reported allocs/op bound the allocations of 65536 inner steps (the loop
// itself is allocation-free; the fixed per-call big.Int result accounting
// is all that shows).
func BenchmarkFactorizedDeltaStep(b *testing.B) {
	db, ks, q := workload.MultiComponent(1, 16, 2)
	in := repairs.MustInstance(db, ks, q)
	if _, err := in.CountFactorized(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetComponentMemo() // measure the Gray walk, not the memo hit
		if _, err := in.CountFactorized(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/65536, "ns/state")
}

func BenchmarkFPRASSample(b *testing.B) {
	db, ks, q := employeeWorkload(b, 500)
	in := repairs.MustInstance(db, ks, q)
	c, err := in.Compactor()
	if err != nil {
		b.Fatal(err)
	}
	member := c.MemberFunc()
	rng := rand.New(rand.NewPCG(15, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SampleOnce(c.Doms, member, rng)
	}
}

func BenchmarkFPRASParallel(b *testing.B) {
	db, ks, q := employeeWorkload(b, 500)
	in := repairs.MustInstance(db, ks, q)
	const samples = 20_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.ApxParallelWithSamples(samples, 0, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*samples), "ns/sample")
}

func BenchmarkKarpLubySample(b *testing.B) {
	db, ks, q := employeeWorkload(b, 200)
	in := repairs.MustInstance(db, ks, q)
	rng := rand.New(rand.NewPCG(17, 18))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.KarpLuby(64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTTSpanSmall(b *testing.B) {
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	)
	ks := relational.Keys(map[string]int{"Employee": 1})
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	in := repairs.MustInstance(db, ks, q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ntt.Span(ntt.CQATransducer(in.UCQ, in.Keys, in.DB), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphismSearch(b *testing.B) {
	db, ks, q := employeeWorkload(b, 1000)
	in := repairs.MustInstance(db, ks, q)
	cq := in.UCQ.Disjuncts[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.HasConsistentHom(cq, in.Idx, ks)
	}
}

func BenchmarkFOEvaluation(b *testing.B) {
	db, ks, _ := employeeWorkload(b, 300)
	_ = ks
	idx := eval.IndexDatabase(db)
	q := query.MustParse("forall i, n, d . (Employee(i, n, d) -> exists m, e . Employee(i, m, e))")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.EvalBoolean(q, idx)
	}
}

func BenchmarkUnionIE(b *testing.B) {
	rng := rand.New(rand.NewPCG(19, 20))
	doms := make([]core.Domain, 24)
	for i := range doms {
		doms[i] = core.MustDomain("d", "e0", "e1", "e2")
	}
	var boxes []core.Selector
	for j := 0; j < 14; j++ {
		var pins []core.Pin
		for _, i := range rng.Perm(len(doms))[:2] {
			pins = append(pins, core.Pin{Index: i, Elem: core.Element("e" + string(rune('0'+rng.IntN(3))))})
		}
		boxes = append(boxes, core.MustSelector(doms, pins...))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CountUnionIE(doms, boxes, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairEnumeration(b *testing.B) {
	db, ks := workload.PairsDatabase(16)
	blocks := relational.Blocks(db, ks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range relational.Repairs(blocks) {
			n++
		}
		if n != 1<<16 {
			b.Fatalf("enumerated %d repairs", n)
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	src := "exists x, y, z . (Employee(1, x, y) & Employee(2, z, y) & !(Dept(y) -> Large(y)))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseInstance(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 22))
	db, ks := workload.Employee(rng, 500, 5, 0.4)
	var sb []byte
	{
		s := ks.String() + db.String()
		sb = []byte(s)
	}
	b.SetBytes(int64(len(sb)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := relational.ParseInstanceString(string(sb)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures instance-ready time over the persistent
// store: mmap + validate + alias the arenas into Database, blocks and
// index. Compare against BenchmarkSnapshotParseIndex (the same instance
// through the text codec) for the cold-start speedup, and watch
// allocs/op: the load path is O(1) allocations regardless of size.
func BenchmarkSnapshotLoad(b *testing.B) {
	db, keys, _ := workload.MultiComponent(64, 8, 4)
	// A single-atom query so counter construction stays negligible and the
	// benchmark isolates instance readiness.
	q := query.MustParse("exists x . C0(x, 'v0')")
	path := b.TempDir() + "/bench.cqs"
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteSnapshot(f, db, keys); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.Counter(q); err != nil {
			b.Fatal(err)
		}
		snap.Close()
	}
}

// BenchmarkSnapshotParseIndex is the text-codec counterpart of
// BenchmarkSnapshotLoad: parse plus block decomposition plus index build
// on the identical instance.
func BenchmarkSnapshotParseIndex(b *testing.B) {
	db, keys, _ := workload.MultiComponent(64, 8, 4)
	q := query.MustParse("exists x . C0(x, 'v0')")
	text := keys.String() + db.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdb, pks, err := ParseInstanceString(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewCounter(pdb, pks, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: estimates stay sane under the bench workloads (run as a test so
// `go test` exercises the bench fixtures too).
func TestBenchFixturesSane(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 500))
	db, ks := workload.Employee(rng, 500, 5, 0.4)
	in := repairs.MustInstance(db, ks, workload.SameDeptQuery(1, 2))
	if in.TotalRepairs().Cmp(big.NewInt(0)) <= 0 {
		t.Fatal("bad total")
	}
	c, err := in.Compactor()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountSharded(b *testing.B) {
	db, ks, q := workload.MultiComponent(8, 10, 2)
	c, err := NewCounter(db, ks, q)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.CountSharded(8, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Plan, slice, count and merge from scratch: shard sub-instances
		// are rebuilt per count, so nothing is memoized across iterations.
		if _, err := c.CountSharded(8, 0); err != nil {
			b.Fatal(err)
		}
	}
}
